package registry

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/soap"
	"repro/internal/soapenc"
	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

func echoHandler(ctx *Context, params []soapenc.Field) ([]soapenc.Field, error) {
	return params, nil
}

func TestAddServiceAndLookup(t *testing.T) {
	c := NewContainer()
	s, err := c.AddService("Echo", "urn:spi:echo", "echo service")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register("echo", echoHandler, "returns its input"); err != nil {
		t.Fatal(err)
	}
	op, fault := c.Lookup("Echo", "echo")
	if fault != nil {
		t.Fatal(fault)
	}
	if op.Service != "Echo" || op.Name != "echo" {
		t.Errorf("op = %+v", op)
	}
}

func TestLookupFaults(t *testing.T) {
	c := NewContainer()
	s := c.MustAddService("Echo", "urn:spi:echo", "")
	s.MustRegister("echo", echoHandler, "")

	_, fault := c.Lookup("Nope", "echo")
	if fault == nil || fault.Code != soap.FaultClient {
		t.Errorf("missing service fault = %v", fault)
	}
	_, fault = c.Lookup("Echo", "nope")
	if fault == nil || fault.Code != soap.FaultClient || !strings.Contains(fault.String, "nope") {
		t.Errorf("missing op fault = %v", fault)
	}
}

func TestDuplicateRegistration(t *testing.T) {
	c := NewContainer()
	if _, err := c.AddService("S", "urn:s", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddService("S", "urn:s2", ""); err == nil {
		t.Error("duplicate service accepted")
	}
	s, _ := c.Service("S")
	if err := s.Register("op", echoHandler, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("op", echoHandler, ""); err == nil {
		t.Error("duplicate operation accepted")
	}
}

func TestValidation(t *testing.T) {
	c := NewContainer()
	if _, err := c.AddService("", "urn:x", ""); err == nil {
		t.Error("empty service name accepted")
	}
	if _, err := c.AddService("X", "", ""); err == nil {
		t.Error("empty namespace accepted")
	}
	s := c.MustAddService("X", "urn:x", "")
	if err := s.Register("", echoHandler, ""); err == nil {
		t.Error("empty op name accepted")
	}
	if err := s.Register("op", nil, ""); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestServiceByNamespace(t *testing.T) {
	c := NewContainer()
	c.MustAddService("A", "urn:a", "")
	c.MustAddService("B", "urn:b", "")
	s, ok := c.ServiceByNamespace("urn:b")
	if !ok || s.Name != "B" {
		t.Errorf("by namespace = %v, %v", s, ok)
	}
	if _, ok := c.ServiceByNamespace("urn:zzz"); ok {
		t.Error("bogus namespace matched")
	}
}

func TestListingSorted(t *testing.T) {
	c := NewContainer()
	c.MustAddService("Zeta", "urn:z", "")
	c.MustAddService("Alpha", "urn:a", "")
	svcs := c.Services()
	if len(svcs) != 2 || svcs[0].Name != "Alpha" || svcs[1].Name != "Zeta" {
		t.Errorf("services = %v", svcs)
	}
	s := svcs[0]
	s.MustRegister("z", echoHandler, "")
	s.MustRegister("a", echoHandler, "")
	ops := s.Operations()
	if len(ops) != 2 || ops[0].Name != "a" || ops[1].Name != "z" {
		t.Errorf("ops = %v", ops)
	}
}

func TestInvokeSuccess(t *testing.T) {
	op := &Operation{Service: "S", Name: "op", Handler: echoHandler}
	ctx := &Context{Service: "S", Operation: "op"}
	params := []soapenc.Field{soapenc.F("x", "1")}
	out, fault := Invoke(op, ctx, params)
	if fault != nil {
		t.Fatal(fault)
	}
	if len(out) != 1 || out[0].Name != "x" {
		t.Errorf("out = %v", out)
	}
}

func TestInvokeErrorBecomesFault(t *testing.T) {
	op := &Operation{Service: "S", Name: "op", Handler: func(ctx *Context, p []soapenc.Field) ([]soapenc.Field, error) {
		return nil, errors.New("db down")
	}}
	_, fault := Invoke(op, &Context{}, nil)
	if fault == nil || fault.Code != soap.FaultServer || fault.String != "db down" {
		t.Errorf("fault = %v", fault)
	}
}

func TestInvokeFaultPassthrough(t *testing.T) {
	want := soap.ClientFault("bad input")
	op := &Operation{Service: "S", Name: "op", Handler: func(ctx *Context, p []soapenc.Field) ([]soapenc.Field, error) {
		return nil, want
	}}
	_, fault := Invoke(op, &Context{}, nil)
	if fault != want {
		t.Errorf("fault = %v, want passthrough", fault)
	}
}

func TestInvokePanicIsolation(t *testing.T) {
	op := &Operation{Service: "S", Name: "op", Handler: func(ctx *Context, p []soapenc.Field) ([]soapenc.Field, error) {
		panic("handler bug")
	}}
	_, fault := Invoke(op, &Context{}, nil)
	if fault == nil || fault.Code != soap.FaultServer || !strings.Contains(fault.String, "handler bug") {
		t.Errorf("fault = %v", fault)
	}
}

func TestContextResponseHeadersConcurrent(t *testing.T) {
	ctx := &Context{}
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx.AddResponseHeader(xmldom.NewElement(xmltext.Name{Local: "h"}))
		}()
	}
	wg.Wait()
	if got := len(ctx.ResponseHeaders()); got != 50 {
		t.Errorf("response headers = %d, want 50", got)
	}
}
