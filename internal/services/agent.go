package services

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/soapenc"
)

// ItineraryRequest is the user's vacation-package request.
type ItineraryRequest struct {
	From string // departure city
	To   string // destination city (also the hotel city)
	Date string
	Card string // credit card number
}

// DefaultItinerary is the request used by the §4.3 experiment.
func DefaultItinerary() ItineraryRequest {
	return ItineraryRequest{From: "Beijing", To: "Shanghai", Date: "2006-09-26", Card: "4111-1111"}
}

// Itinerary is the outcome of a travel-agent run.
type Itinerary struct {
	Flight            string
	FlightPrice       float64
	FlightReservation int64
	Room              string
	RoomPrice         float64
	RoomReservation   int64
	AuthorizationID   string
	Total             float64

	// Invocations counts service operations executed (always 11, matching
	// "the eleven service invocations" of §4.3).
	Invocations int
	// Messages counts SOAP messages sent (11 unoptimized; 7 with steps 1
	// and 3 packed).
	Messages int
}

// RunTravelAgent executes the travel-agent sequence of Figure 8 against a
// deployed travel suite. With optimized true, steps 1 (three flight
// queries) and 3 (three room queries) are packed into one SOAP message
// each, exactly the optimization §4.3 measures; everything else is
// identical.
func RunTravelAgent(c *core.Client, req ItineraryRequest, optimized bool) (*Itinerary, error) {
	it := &Itinerary{}

	// Step 1: query a list of flights from each airline service.
	flightResults := make([][]soapenc.Field, NumAirlines)
	queryFlight := func(i int) (string, string, []soapenc.Field) {
		return AirlineService(i), "QueryFlights", []soapenc.Field{
			soapenc.F("from", req.From), soapenc.F("to", req.To), soapenc.F("date", req.Date),
		}
	}
	if optimized {
		b := c.NewBatch()
		calls := make([]*core.Call, NumAirlines)
		for i := 0; i < NumAirlines; i++ {
			svc, op, params := queryFlight(i)
			calls[i] = b.Add(svc, op, params...)
		}
		if err := b.Send(); err != nil {
			return nil, fmt.Errorf("step 1 (packed): %w", err)
		}
		for i, call := range calls {
			res, err := call.Wait()
			if err != nil {
				return nil, fmt.Errorf("step 1, airline %d: %w", i+1, err)
			}
			flightResults[i] = res
		}
		it.Messages++
	} else {
		for i := 0; i < NumAirlines; i++ {
			svc, op, params := queryFlight(i)
			res, err := c.Call(svc, op, params...)
			if err != nil {
				return nil, fmt.Errorf("step 1, airline %d: %w", i+1, err)
			}
			flightResults[i] = res
			it.Messages++
		}
	}
	it.Invocations += NumAirlines

	// Choose the most economical flight across airlines ("without loss of
	// generality, assume that the user chooses the most economical").
	bestAirline := -1
	for i, res := range flightResults {
		flight, price, err := cheapestOffer(res, "flights", "flight")
		if err != nil {
			return nil, fmt.Errorf("step 1, airline %d: %w", i+1, err)
		}
		if bestAirline < 0 || price < it.FlightPrice {
			bestAirline, it.Flight, it.FlightPrice = i, flight, price
		}
	}

	// Step 2: reserve the chosen flight.
	res, err := c.Call(AirlineService(bestAirline), "Reserve", soapenc.F("flight", it.Flight))
	if err != nil {
		return nil, fmt.Errorf("step 2: %w", err)
	}
	it.FlightReservation = firstInt(res, "reservedID")
	it.Invocations++
	it.Messages++

	// Step 3: query a list of rooms from each hotel service.
	roomResults := make([][]soapenc.Field, NumHotels)
	queryRoom := func(i int) (string, string, []soapenc.Field) {
		return HotelService(i), "QueryRooms", []soapenc.Field{
			soapenc.F("city", req.To), soapenc.F("date", req.Date),
		}
	}
	if optimized {
		b := c.NewBatch()
		calls := make([]*core.Call, NumHotels)
		for i := 0; i < NumHotels; i++ {
			svc, op, params := queryRoom(i)
			calls[i] = b.Add(svc, op, params...)
		}
		if err := b.Send(); err != nil {
			return nil, fmt.Errorf("step 3 (packed): %w", err)
		}
		for i, call := range calls {
			res, err := call.Wait()
			if err != nil {
				return nil, fmt.Errorf("step 3, hotel %d: %w", i+1, err)
			}
			roomResults[i] = res
		}
		it.Messages++
	} else {
		for i := 0; i < NumHotels; i++ {
			svc, op, params := queryRoom(i)
			res, err := c.Call(svc, op, params...)
			if err != nil {
				return nil, fmt.Errorf("step 3, hotel %d: %w", i+1, err)
			}
			roomResults[i] = res
			it.Messages++
		}
	}
	it.Invocations += NumHotels

	bestHotel := -1
	for i, res := range roomResults {
		room, price, err := cheapestOffer(res, "rooms", "room")
		if err != nil {
			return nil, fmt.Errorf("step 3, hotel %d: %w", i+1, err)
		}
		if bestHotel < 0 || price < it.RoomPrice {
			bestHotel, it.Room, it.RoomPrice = i, room, price
		}
	}

	// Step 4: reserve the chosen room.
	res, err = c.Call(HotelService(bestHotel), "Reserve", soapenc.F("room", it.Room))
	if err != nil {
		return nil, fmt.Errorf("step 4: %w", err)
	}
	it.RoomReservation = firstInt(res, "reservedID")
	it.Invocations++
	it.Messages++

	// Step 5: confirm payment with the credit-card service.
	it.Total = it.FlightPrice + it.RoomPrice
	res, err = c.Call(CreditCardService, "ConfirmPayment",
		soapenc.F("amount", it.Total), soapenc.F("card", req.Card))
	if err != nil {
		return nil, fmt.Errorf("step 5: %w", err)
	}
	it.AuthorizationID = firstString(res, "authorizationID")
	it.Invocations++
	it.Messages++

	// Step 6: confirm the flight reservation with the authorization id.
	if _, err := c.Call(AirlineService(bestAirline), "Confirm",
		soapenc.F("reservedID", it.FlightReservation),
		soapenc.F("authorizationID", it.AuthorizationID)); err != nil {
		return nil, fmt.Errorf("step 6: %w", err)
	}
	it.Invocations++
	it.Messages++

	// Step 7: confirm the room reservation with the authorization id.
	if _, err := c.Call(HotelService(bestHotel), "Confirm",
		soapenc.F("reservedID", it.RoomReservation),
		soapenc.F("authorizationID", it.AuthorizationID)); err != nil {
		return nil, fmt.Errorf("step 7: %w", err)
	}
	it.Invocations++
	it.Messages++

	return it, nil
}

// cheapestOffer scans a result's offer array for the lowest price.
func cheapestOffer(res []soapenc.Field, listName, itemName string) (name string, price float64, err error) {
	var arr soapenc.Array
	for _, f := range res {
		if f.Name == listName {
			arr, _ = f.Value.(soapenc.Array)
		}
	}
	if len(arr) == 0 {
		return "", 0, fmt.Errorf("no %s in response", listName)
	}
	best := -1.0
	for _, v := range arr {
		s, ok := v.(*soapenc.Struct)
		if !ok {
			continue
		}
		p := s.GetFloat("price")
		if best < 0 || p < best {
			best = p
			name = s.GetString(itemName)
		}
	}
	if best < 0 {
		return "", 0, fmt.Errorf("no priced %s in response", itemName)
	}
	return name, best, nil
}

func firstInt(res []soapenc.Field, name string) int64 {
	for _, f := range res {
		if f.Name == name {
			n, _ := f.Value.(int64)
			return n
		}
	}
	return 0
}

func firstString(res []soapenc.Field, name string) string {
	for _, f := range res {
		if f.Name == name {
			s, _ := f.Value.(string)
			return s
		}
	}
	return ""
}
