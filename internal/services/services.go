// Package services implements the services used by the paper's evaluation:
//
//   - Echo — §4.1: "we use Echo services, which only return the data
//     whatever they received" for the latency experiments of Figures 5-7;
//   - WeatherService — the Figure 4 example (two city weather queries
//     packed into one message);
//   - the travel-agent suite of §3.1/§4.3 (Figure 8): three airline
//     services, three hotel services and a credit-card service, plus the
//     travel-agent orchestration that invokes them.
//
// Handlers are deliberately plain registry handlers: nothing in them knows
// about packing, which demonstrates the paper's "requires no change to
// services code" property.
package services

import (
	"time"

	"repro/internal/registry"
	"repro/internal/soapenc"
)

// Options tunes deployed services.
type Options struct {
	// WorkTime simulates per-operation backend work (database lookups,
	// fare computation, ...). Zero means the operation is instantaneous,
	// as with the pure Echo latency tests.
	WorkTime time.Duration
}

func (o Options) work() {
	if o.WorkTime > 0 {
		time.Sleep(o.WorkTime)
	}
}

// DeployEcho registers the Echo service used by the Figures 5-7 latency
// experiments.
func DeployEcho(c *registry.Container, opt Options) error {
	svc, err := c.AddService("Echo", "urn:spi:Echo", "returns the data whatever it received (§4.1)")
	if err != nil {
		return err
	}
	if err := svc.Register("echo", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		opt.work()
		return params, nil
	}, "identity over its parameters"); err != nil {
		return err
	}
	return svc.Register("echoSize", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		opt.work()
		total := int64(0)
		for _, p := range params {
			if s, ok := p.Value.(string); ok {
				total += int64(len(s))
			}
		}
		return []soapenc.Field{soapenc.F("size", total)}, nil
	}, "returns only the byte count of its string parameters")
}

// DeployWeather registers the WeatherService of Figure 4.
func DeployWeather(c *registry.Container, opt Options) error {
	svc, err := c.AddService("WeatherService", "urn:spi:WeatherService",
		"city weather lookups, as in the paper's Figure 4")
	if err != nil {
		return err
	}
	reports := map[string]string{
		"Beijing":  "Sunny, 31°C",
		"Shanghai": "Cloudy, 28°C",
		"Tianjin":  "Light rain, 26°C",
	}
	return svc.Register("GetWeather", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		opt.work()
		city := ""
		for _, p := range params {
			if p.Name == "CityName" {
				city, _ = p.Value.(string)
			}
		}
		// Normalize "Beijing, China" -> "Beijing".
		for known := range reports {
			if len(city) >= len(known) && city[:len(known)] == known {
				city = known
				break
			}
		}
		report, ok := reports[city]
		if !ok {
			report = "No data for " + city
		}
		return []soapenc.Field{soapenc.F("GetWeatherResult", report)}, nil
	}, "returns the weather report for a city")
}
