package services

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/soapenc"
)

// deployAll spins up a full container (echo, weather, travel) behind a
// server and returns a client over an in-memory link.
func deployAll(t *testing.T, opt Options) (*core.Client, *TravelState, *netsim.Link) {
	t.Helper()
	container := registry.NewContainer()
	if err := DeployEcho(container, opt); err != nil {
		t.Fatal(err)
	}
	if err := DeployWeather(container, opt); err != nil {
		t.Fatal(err)
	}
	state, err := DeployTravel(container, opt)
	if err != nil {
		t.Fatal(err)
	}

	link := netsim.NewLink(netsim.Fast())
	lis, err := link.Listen()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := core.NewServer(core.ServerConfig{Container: container})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	client, err := core.NewClient(core.ClientConfig{Dial: link.Dial, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		srv.Close()
		link.Close()
	})
	return client, state, link
}

func TestEchoService(t *testing.T) {
	client, _, _ := deployAll(t, Options{})
	res, err := client.Call("Echo", "echo", soapenc.F("data", strings.Repeat("x", 100)))
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := res[0].Value.(string); len(s) != 100 {
		t.Errorf("echo returned %d bytes", len(s))
	}
	res, err = client.Call("Echo", "echoSize", soapenc.F("data", strings.Repeat("x", 1234)))
	if err != nil {
		t.Fatal(err)
	}
	if !soapenc.Equal(res[0].Value, int64(1234)) {
		t.Errorf("echoSize = %v", res[0].Value)
	}
}

func TestWeatherService(t *testing.T) {
	client, _, _ := deployAll(t, Options{})
	res, err := client.Call("WeatherService", "GetWeather", soapenc.F("CityName", "Beijing, China"))
	if err != nil {
		t.Fatal(err)
	}
	report, _ := res[0].Value.(string)
	if !strings.Contains(report, "Sunny") {
		t.Errorf("Beijing weather = %q", report)
	}
	res, err = client.Call("WeatherService", "GetWeather", soapenc.F("CityName", "Atlantis"))
	if err != nil {
		t.Fatal(err)
	}
	if report, _ := res[0].Value.(string); !strings.Contains(report, "No data") {
		t.Errorf("unknown city = %q", report)
	}
}

func TestAirlineQueryAndReserve(t *testing.T) {
	client, state, _ := deployAll(t, Options{})
	res, err := client.Call("Airline1", "QueryFlights",
		soapenc.F("from", "A"), soapenc.F("to", "B"), soapenc.F("date", "2006-09-26"))
	if err != nil {
		t.Fatal(err)
	}
	flights, _ := res[0].Value.(soapenc.Array)
	if len(flights) != 3 {
		t.Fatalf("flights = %d", len(flights))
	}
	first, _ := flights[0].(*soapenc.Struct)
	if first.GetString("flight") == "" || first.GetFloat("price") <= 0 {
		t.Errorf("flight struct = %#v", first)
	}

	res, err = client.Call("Airline1", "Reserve", soapenc.F("flight", first.GetString("flight")))
	if err != nil {
		t.Fatal(err)
	}
	id := res[0].Value.(int64)
	if id == 0 {
		t.Error("no reservation id")
	}
	r, c := state.Airlines[0].counts()
	if r != 1 || c != 0 {
		t.Errorf("book counts = %d reserved, %d confirmed", r, c)
	}
}

func TestConfirmValidation(t *testing.T) {
	client, _, _ := deployAll(t, Options{})
	// Confirming a non-existent reservation faults.
	if _, err := client.Call("Airline1", "Confirm",
		soapenc.F("reservedID", int64(999)), soapenc.F("authorizationID", "AUTH-1")); err == nil {
		t.Error("bogus confirmation accepted")
	}
	// Missing parameters fault.
	if _, err := client.Call("Airline1", "QueryFlights"); err == nil {
		t.Error("QueryFlights without params accepted")
	}
	if _, err := client.Call("CreditCard", "ConfirmPayment", soapenc.F("amount", -5.0)); err == nil {
		t.Error("negative payment accepted")
	}
}

func TestTravelAgentUnoptimized(t *testing.T) {
	client, state, _ := deployAll(t, Options{})
	it, err := RunTravelAgent(client, DefaultItinerary(), false)
	if err != nil {
		t.Fatal(err)
	}
	assertItinerary(t, it, state)
	if it.Messages != 11 {
		t.Errorf("unoptimized messages = %d, want 11", it.Messages)
	}
}

func TestTravelAgentOptimized(t *testing.T) {
	client, state, _ := deployAll(t, Options{})
	it, err := RunTravelAgent(client, DefaultItinerary(), true)
	if err != nil {
		t.Fatal(err)
	}
	assertItinerary(t, it, state)
	if it.Messages != 7 {
		t.Errorf("optimized messages = %d, want 7 (steps 1 and 3 packed)", it.Messages)
	}
}

// assertItinerary checks the semantic outcome is identical in both modes:
// the 11 invocations happened, the cheapest vendors won, payment was
// authorized and both reservations were confirmed.
func assertItinerary(t *testing.T, it *Itinerary, state *TravelState) {
	t.Helper()
	if it.Invocations != 11 {
		t.Errorf("invocations = %d, want 11", it.Invocations)
	}
	// Airline2 and Hotel3 are deterministic price leaders.
	if !strings.HasPrefix(it.Flight, "Airline2-") {
		t.Errorf("chose flight %q, want Airline2 (cheapest)", it.Flight)
	}
	if !strings.HasPrefix(it.Room, "Hotel3-") {
		t.Errorf("chose room %q, want Hotel3 (cheapest)", it.Room)
	}
	if it.AuthorizationID == "" {
		t.Error("no authorization id")
	}
	if it.Total != it.FlightPrice+it.RoomPrice {
		t.Errorf("total = %v, want %v", it.Total, it.FlightPrice+it.RoomPrice)
	}
	if got := state.AuthorizedTotal(); got != it.Total {
		t.Errorf("authorized %v, want %v", got, it.Total)
	}
	ar, ac, hr, hc := state.Confirmations()
	if ar != 1 || ac != 1 || hr != 1 || hc != 1 {
		t.Errorf("reservations/confirmations = %d/%d air, %d/%d hotel; want 1/1 each", ar, ac, hr, hc)
	}
}

func TestTravelAgentMessageAccounting(t *testing.T) {
	client, _, link := deployAll(t, Options{})
	if _, err := RunTravelAgent(client, DefaultItinerary(), false); err != nil {
		t.Fatal(err)
	}
	unopt := link.Stats().Dials
	link.ResetStats()
	if _, err := RunTravelAgent(client, DefaultItinerary(), true); err != nil {
		t.Fatal(err)
	}
	opt := link.Stats().Dials
	if unopt != 11 || opt != 7 {
		t.Errorf("dials = %d unoptimized, %d optimized; want 11 and 7", unopt, opt)
	}
}

func TestTravelAgentWithWorkTime(t *testing.T) {
	client, _, _ := deployAll(t, Options{WorkTime: 5 * time.Millisecond})
	start := time.Now()
	if _, err := RunTravelAgent(client, DefaultItinerary(), true); err != nil {
		t.Fatal(err)
	}
	optimized := time.Since(start)
	// Packed steps execute the three queries concurrently on the app
	// stage, so the whole run is bounded well below 11 x work.
	if optimized > 11*5*time.Millisecond+200*time.Millisecond {
		t.Errorf("optimized run took %v", optimized)
	}
}

func TestHotelQueryAndReserve(t *testing.T) {
	client, state, _ := deployAll(t, Options{})
	res, err := client.Call("Hotel2", "QueryRooms", soapenc.F("city", "Shanghai"))
	if err != nil {
		t.Fatal(err)
	}
	rooms, _ := res[0].Value.(soapenc.Array)
	if len(rooms) != 3 {
		t.Fatalf("rooms = %d", len(rooms))
	}
	first, _ := rooms[0].(*soapenc.Struct)
	res, err = client.Call("Hotel2", "Reserve", soapenc.F("room", first.GetString("room")))
	if err != nil {
		t.Fatal(err)
	}
	id := res[0].Value.(int64)
	if _, err := client.Call("Hotel2", "Confirm",
		soapenc.F("reservedID", id), soapenc.F("authorizationID", "AUTH-9")); err != nil {
		t.Fatal(err)
	}
	// Double confirmation is rejected.
	if _, err := client.Call("Hotel2", "Confirm",
		soapenc.F("reservedID", id), soapenc.F("authorizationID", "AUTH-9")); err == nil {
		t.Error("double confirmation accepted")
	}
	_, c := state.Hotels[1].counts()
	if c != 1 {
		t.Errorf("confirmed = %d", c)
	}
}

func TestReserveValidation(t *testing.T) {
	client, _, _ := deployAll(t, Options{})
	if _, err := client.Call("Hotel1", "Reserve"); err == nil {
		t.Error("reserve without room accepted")
	}
	if _, err := client.Call("Airline1", "Reserve"); err == nil {
		t.Error("reserve without flight accepted")
	}
	if _, err := client.Call("Hotel1", "QueryRooms"); err == nil {
		t.Error("query without city accepted")
	}
	if _, err := client.Call("Airline1", "Confirm",
		soapenc.F("reservedID", int64(1))); err == nil {
		t.Error("confirm without authorization accepted")
	}
}

func TestPriceDeterminism(t *testing.T) {
	// The "user chooses the most economical" step needs stable prices:
	// Airline2 must beat Airline1 and Airline3, Hotel3 must beat the rest.
	client, _, _ := deployAll(t, Options{})
	cheapestOf := func(service, op, listName, priceField string, params ...soapenc.Field) float64 {
		res, err := client.Call(service, op, params...)
		if err != nil {
			t.Fatal(err)
		}
		arr, _ := res[0].Value.(soapenc.Array)
		best := -1.0
		for _, v := range arr {
			s, _ := v.(*soapenc.Struct)
			if p := s.GetFloat(priceField); best < 0 || p < best {
				best = p
			}
		}
		return best
	}
	flightArgs := []soapenc.Field{soapenc.F("from", "A"), soapenc.F("to", "B"), soapenc.F("date", "d")}
	a1 := cheapestOf("Airline1", "QueryFlights", "flights", "price", flightArgs...)
	a2 := cheapestOf("Airline2", "QueryFlights", "flights", "price", flightArgs...)
	a3 := cheapestOf("Airline3", "QueryFlights", "flights", "price", flightArgs...)
	if !(a2 < a1 && a2 < a3) {
		t.Errorf("airline prices = %.0f %.0f %.0f; Airline2 must be cheapest", a1, a2, a3)
	}
	roomArgs := []soapenc.Field{soapenc.F("city", "X")}
	h1 := cheapestOf("Hotel1", "QueryRooms", "rooms", "price", roomArgs...)
	h2 := cheapestOf("Hotel2", "QueryRooms", "rooms", "price", roomArgs...)
	h3 := cheapestOf("Hotel3", "QueryRooms", "rooms", "price", roomArgs...)
	if !(h3 < h1 && h3 < h2) {
		t.Errorf("hotel prices = %.0f %.0f %.0f; Hotel3 must be cheapest", h1, h2, h3)
	}
}

func TestTravelAgentPacksAreSemanticallyIdentical(t *testing.T) {
	// Both modes must book the same flight and room at the same prices.
	clientA, _, _ := deployAll(t, Options{})
	unopt, err := RunTravelAgent(clientA, DefaultItinerary(), false)
	if err != nil {
		t.Fatal(err)
	}
	clientB, _, _ := deployAll(t, Options{})
	opt, err := RunTravelAgent(clientB, DefaultItinerary(), true)
	if err != nil {
		t.Fatal(err)
	}
	if unopt.Flight != opt.Flight || unopt.Room != opt.Room ||
		unopt.FlightPrice != opt.FlightPrice || unopt.RoomPrice != opt.RoomPrice ||
		unopt.Total != opt.Total {
		t.Errorf("modes booked differently:\nunopt %+v\nopt   %+v", unopt, opt)
	}
}

func TestDuplicateDeployRejected(t *testing.T) {
	container := registry.NewContainer()
	if err := DeployEcho(container, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := DeployEcho(container, Options{}); err == nil {
		t.Error("duplicate echo deployment accepted")
	}
}
