package services

import (
	"fmt"
	"sync"

	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/soapenc"
)

// Travel-agent deployment constants. The use case (W3C Web Services
// Architecture Usage Scenarios, the paper's [15]) has three airline
// services, three hotel services and one credit-card service living in one
// service container, which is what makes steps 1 and 3 packable.
const (
	// NumAirlines is the number of airline services deployed.
	NumAirlines = 3
	// NumHotels is the number of hotel services deployed.
	NumHotels = 3
	// CreditCardService is the payment service name.
	CreditCardService = "CreditCard"
)

// AirlineService returns the i-th airline service name (0-based).
func AirlineService(i int) string { return fmt.Sprintf("Airline%d", i+1) }

// HotelService returns the i-th hotel service name (0-based).
func HotelService(i int) string { return fmt.Sprintf("Hotel%d", i+1) }

// reservationBook tracks reservations and confirmations for one vendor.
type reservationBook struct {
	mu        sync.Mutex
	next      int64
	reserved  map[int64]string // reservation id -> item
	confirmed map[int64]string // reservation id -> authorization id
}

func newReservationBook() *reservationBook {
	return &reservationBook{reserved: make(map[int64]string), confirmed: make(map[int64]string)}
}

func (b *reservationBook) reserve(item string) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.next++
	b.reserved[b.next] = item
	return b.next
}

func (b *reservationBook) confirm(id int64, auth string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.reserved[id]; !ok {
		return soap.ClientFault("no reservation %d", id)
	}
	if _, dup := b.confirmed[id]; dup {
		return soap.ClientFault("reservation %d already confirmed", id)
	}
	if auth == "" {
		return soap.ClientFault("missing authorization id")
	}
	b.confirmed[id] = auth
	return nil
}

func (b *reservationBook) counts() (reserved, confirmed int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.reserved), len(b.confirmed)
}

// TravelState exposes the books for test assertions.
type TravelState struct {
	Airlines   []*reservationBook
	Hotels     []*reservationBook
	authorized map[string]float64
	mu         sync.Mutex
	nextAuth   int
}

// AuthorizedTotal returns the sum of authorized payments.
func (ts *TravelState) AuthorizedTotal() float64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	var total float64
	for _, v := range ts.authorized {
		total += v
	}
	return total
}

// Confirmations returns (airline reservations, airline confirmations,
// hotel reservations, hotel confirmations) totals.
func (ts *TravelState) Confirmations() (ar, ac, hr, hc int) {
	for _, b := range ts.Airlines {
		r, c := b.counts()
		ar, ac = ar+r, ac+c
	}
	for _, b := range ts.Hotels {
		r, c := b.counts()
		hr, hc = hr+r, hc+c
	}
	return
}

// DeployTravel registers the full travel-agent service suite and returns
// the shared state for assertions.
//
// Flight and room prices are deterministic functions of the vendor index so
// the "user chooses the most economical" step of §4.3 is stable: Airline2
// and Hotel3 are always cheapest.
func DeployTravel(c *registry.Container, opt Options) (*TravelState, error) {
	state := &TravelState{authorized: make(map[string]float64)}

	for i := 0; i < NumAirlines; i++ {
		name := AirlineService(i)
		book := newReservationBook()
		state.Airlines = append(state.Airlines, book)
		svc, err := c.AddService(name, "urn:spi:"+name, "airline flight search and booking")
		if err != nil {
			return nil, err
		}
		idx := i
		if err := svc.Register("QueryFlights", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
			opt.work()
			from, to := argString(params, "from"), argString(params, "to")
			if from == "" || to == "" {
				return nil, soap.ClientFault("QueryFlights needs from and to")
			}
			flights := soapenc.Array{}
			for f := 0; f < 3; f++ {
				flights = append(flights, soapenc.NewStruct(
					soapenc.F("flight", fmt.Sprintf("%s-%s%d", name, "F", f+1)),
					soapenc.F("from", from),
					soapenc.F("to", to),
					// Airline2 (idx 1) is cheapest.
					soapenc.F("price", 400.0+float64(((idx+2)%3)*100)+float64(f*25)),
				))
			}
			return []soapenc.Field{soapenc.F("flights", flights)}, nil
		}, "list flights between two cities"); err != nil {
			return nil, err
		}
		if err := svc.Register("Reserve", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
			opt.work()
			flight := argString(params, "flight")
			if flight == "" {
				return nil, soap.ClientFault("Reserve needs a flight")
			}
			id := book.reserve(flight)
			return []soapenc.Field{soapenc.F("reservedID", id)}, nil
		}, "reserve a flight, returning the reservation id"); err != nil {
			return nil, err
		}
		if err := svc.Register("Confirm", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
			opt.work()
			if err := book.confirm(argInt(params, "reservedID"), argString(params, "authorizationID")); err != nil {
				return nil, err
			}
			return []soapenc.Field{soapenc.F("ok", true)}, nil
		}, "confirm a reservation with a payment authorization"); err != nil {
			return nil, err
		}
	}

	for i := 0; i < NumHotels; i++ {
		name := HotelService(i)
		book := newReservationBook()
		state.Hotels = append(state.Hotels, book)
		svc, err := c.AddService(name, "urn:spi:"+name, "hotel room search and booking")
		if err != nil {
			return nil, err
		}
		idx := i
		if err := svc.Register("QueryRooms", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
			opt.work()
			city := argString(params, "city")
			if city == "" {
				return nil, soap.ClientFault("QueryRooms needs a city")
			}
			rooms := soapenc.Array{}
			for r := 0; r < 3; r++ {
				rooms = append(rooms, soapenc.NewStruct(
					soapenc.F("room", fmt.Sprintf("%s-R%d", name, r+1)),
					soapenc.F("city", city),
					// Hotel3 (idx 2) is cheapest.
					soapenc.F("price", 120.0+float64(((idx+1)%3)*40)+float64(r*10)),
				))
			}
			return []soapenc.Field{soapenc.F("rooms", rooms)}, nil
		}, "list rooms in a city"); err != nil {
			return nil, err
		}
		if err := svc.Register("Reserve", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
			opt.work()
			room := argString(params, "room")
			if room == "" {
				return nil, soap.ClientFault("Reserve needs a room")
			}
			id := book.reserve(room)
			return []soapenc.Field{soapenc.F("reservedID", id)}, nil
		}, "reserve a room, returning the reservation id"); err != nil {
			return nil, err
		}
		if err := svc.Register("Confirm", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
			opt.work()
			if err := book.confirm(argInt(params, "reservedID"), argString(params, "authorizationID")); err != nil {
				return nil, err
			}
			return []soapenc.Field{soapenc.F("ok", true)}, nil
		}, "confirm a reservation with a payment authorization"); err != nil {
			return nil, err
		}
	}

	svc, err := c.AddService(CreditCardService, "urn:spi:"+CreditCardService, "payment authorization")
	if err != nil {
		return nil, err
	}
	if err := svc.Register("ConfirmPayment", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		opt.work()
		amount := argFloat(params, "amount")
		card := argString(params, "card")
		if amount <= 0 || card == "" {
			return nil, soap.ClientFault("ConfirmPayment needs a positive amount and a card")
		}
		state.mu.Lock()
		state.nextAuth++
		auth := fmt.Sprintf("AUTH-%06d", state.nextAuth)
		state.authorized[auth] = amount
		state.mu.Unlock()
		return []soapenc.Field{soapenc.F("authorizationID", auth)}, nil
	}, "authorize a payment, returning the authorization id"); err != nil {
		return nil, err
	}
	return state, nil
}

func argString(params []soapenc.Field, name string) string {
	for _, p := range params {
		if p.Name == name {
			s, _ := p.Value.(string)
			return s
		}
	}
	return ""
}

func argInt(params []soapenc.Field, name string) int64 {
	for _, p := range params {
		if p.Name == name {
			n, _ := p.Value.(int64)
			return n
		}
	}
	return 0
}

func argFloat(params []soapenc.Field, name string) float64 {
	for _, p := range params {
		if p.Name == name {
			f, _ := p.Value.(float64)
			return f
		}
	}
	return 0
}
