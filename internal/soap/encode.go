package soap

import (
	"sync"

	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// StreamEncoder emits a SOAP envelope directly into a pooled byte buffer,
// without building the xmldom tree that Envelope.Encode constructs and
// throws away per message. Its output is byte-identical to Envelope.Encode
// for the same logical envelope — golden and differential tests pin this —
// so the two paths are interchangeable on the wire.
//
// Lifecycle: NewStreamEncoder → Begin → body writes → Finish → (use bytes)
// → Release. The byte slice returned by Finish aliases the pooled buffer
// and is invalidated by Release; callers that need the bytes past Release
// must copy them first. A StreamEncoder must not be used after Release.
type StreamEncoder struct {
	em *xmltext.Emitter
}

var streamEncoderPool = sync.Pool{New: func() any { return new(StreamEncoder) }}

// NewStreamEncoder returns a pooled encoder ready for Begin.
func NewStreamEncoder() *StreamEncoder {
	enc := streamEncoderPool.Get().(*StreamEncoder)
	enc.em = xmltext.AcquireEmitter()
	return enc
}

// Release recycles the encoder and its buffer. Safe on nil and idempotent,
// so it can run unconditionally in deferred cleanup.
func (enc *StreamEncoder) Release() {
	if enc == nil || enc.em == nil {
		return
	}
	xmltext.ReleaseEmitter(enc.em)
	enc.em = nil
	streamEncoderPool.Put(enc)
}

// Emitter exposes the underlying emitter for typed body writers
// (soapenc.EncodeParamsTo, the core assembler).
func (enc *StreamEncoder) Emitter() *xmltext.Emitter { return enc.em }

// Envelope vocabulary as precomputed names, so the hot path builds no
// Name values per message.
var (
	nameEnvelope  = xmltext.Name{Prefix: PrefixEnvelope, Local: "Envelope"}
	nameHeader    = xmltext.Name{Prefix: PrefixEnvelope, Local: "Header"}
	nameBody      = xmltext.Name{Prefix: PrefixEnvelope, Local: "Body"}
	nameFault     = xmltext.Name{Prefix: PrefixEnvelope, Local: "Fault"}
	nameXmlnsEnv  = xmltext.Name{Prefix: "xmlns", Local: PrefixEnvelope}
	nameXmlnsEnc  = xmltext.Name{Prefix: "xmlns", Local: PrefixEncoding}
	nameXmlnsXSI  = xmltext.Name{Prefix: "xmlns", Local: PrefixXSI}
	nameXmlnsXSD  = xmltext.Name{Prefix: "xmlns", Local: PrefixXSD}
	nameFaultcode = xmltext.Name{Local: "faultcode"}
	nameFaultstr  = xmltext.Name{Local: "faultstring"}
	nameFaultact  = xmltext.Name{Local: "faultactor"}

	nameFault12  = xmltext.Name{Prefix: "env", Local: "Fault"}
	nameXmlnsE12 = xmltext.Name{Prefix: "xmlns", Local: "env"}
	nameCode12   = xmltext.Name{Prefix: "env", Local: "Code"}
	nameValue12  = xmltext.Name{Prefix: "env", Local: "Value"}
	nameReason12 = xmltext.Name{Prefix: "env", Local: "Reason"}
	nameText12   = xmltext.Name{Prefix: "env", Local: "Text"}
	nameNode12   = xmltext.Name{Prefix: "env", Local: "Node"}
	nameDetail12 = xmltext.Name{Prefix: "env", Local: "Detail"}
	nameXMLLang  = xmltext.Name{Prefix: "xml", Local: "lang"}
)

// Begin writes the declaration, the envelope start tag with the standard
// namespace declarations (same order as Envelope.Element), the optional
// Header with its blocks, and opens the Body.
func (enc *StreamEncoder) Begin(v Version, headers []*xmldom.Element) {
	em := enc.em
	em.Declaration()
	em.Start(nameEnvelope)
	em.Attr(nameXmlnsEnv, v.Namespace())
	em.Attr(nameXmlnsEnc, NSEncoding)
	em.Attr(nameXmlnsXSI, NSXSI)
	em.Attr(nameXmlnsXSD, NSXSD)
	if len(headers) > 0 {
		em.Start(nameHeader)
		for _, b := range headers {
			b.AppendTo(em)
		}
		em.End()
	}
	em.Start(nameBody)
}

// BeginRawHeader is Begin for callers that hold the header blocks as
// pre-serialized bytes rather than a DOM — the gateway splices header
// sections straight out of backend responses. Empty raw omits the Header
// element, exactly as Begin does for a nil slice.
func (enc *StreamEncoder) BeginRawHeader(v Version, raw []byte) {
	em := enc.em
	em.Declaration()
	em.Start(nameEnvelope)
	em.Attr(nameXmlnsEnv, v.Namespace())
	em.Attr(nameXmlnsEnc, NSEncoding)
	em.Attr(nameXmlnsXSI, NSXSI)
	em.Attr(nameXmlnsXSD, NSXSD)
	if len(raw) > 0 {
		em.Start(nameHeader)
		em.Raw(raw)
		em.End()
	}
	em.Start(nameBody)
}

// WriteBodyElement streams one already-built body entry. DOM-free callers
// write through Emitter instead.
func (enc *StreamEncoder) WriteBodyElement(el *xmldom.Element) {
	el.AppendTo(enc.em)
}

// Finish closes Body and Envelope and returns the document bytes. The
// slice is owned by the encoder: valid until Release.
func (enc *StreamEncoder) Finish() ([]byte, error) {
	em := enc.em
	em.End() // Body
	em.End() // Envelope
	if err := em.Finish(); err != nil {
		return nil, err
	}
	return em.Bytes(), nil
}

// EncodeEnvelope serializes a whole envelope, the drop-in replacement for
// Envelope.Encode into a fresh buffer. The returned bytes are valid until
// Release.
func (enc *StreamEncoder) EncodeEnvelope(env *Envelope) ([]byte, error) {
	enc.Begin(env.Version, env.Header)
	for _, e := range env.Body {
		e.AppendTo(enc.em)
	}
	return enc.Finish()
}

// AppendElementFor streams the fault body entry in the given version's
// layout, byte-identical to ElementFor serialized through the DOM. extra
// attributes (e.g. spi:id on per-item faults) are emitted right after the
// version-required ones, matching SetAttr-append order on the DOM path.
func (f *Fault) AppendElementFor(em *xmltext.Emitter, v Version, extra ...xmltext.Attr) {
	if v == V12 {
		f.appendElement12(em, extra)
		return
	}
	code := f.Code
	if code == "" {
		code = FaultServer
	}
	em.Start(nameFault)
	for _, a := range extra {
		em.Attr(a.Name, a.Value)
	}
	em.Start(nameFaultcode)
	// Escaping is character-local, so adjacent Text calls concatenate to
	// the same bytes as one SetText(PrefixEnvelope + ":" + code) — minus
	// the string concatenation.
	em.Text(PrefixEnvelope)
	em.Text(":")
	em.Text(code)
	em.End()
	em.Start(nameFaultstr)
	em.Text(f.String)
	em.End()
	if f.Actor != "" {
		em.Start(nameFaultact)
		em.Text(f.Actor)
		em.End()
	}
	if f.Detail != nil {
		f.Detail.AppendTo(em)
	}
	em.End()
}

func (f *Fault) appendElement12(em *xmltext.Emitter, extra []xmltext.Attr) {
	code := f.Code
	if code == "" {
		code = FaultServer
	}
	em.Start(nameFault12)
	em.Attr(nameXmlnsE12, NSEnvelope12)
	for _, a := range extra {
		em.Attr(a.Name, a.Value)
	}
	em.Start(nameCode12)
	em.Start(nameValue12)
	em.Text("env:")
	em.Text(faultCode12(code))
	em.End()
	em.End()
	em.Start(nameReason12)
	em.Start(nameText12)
	em.Attr(nameXMLLang, "en")
	em.Text(f.String)
	em.End()
	em.End()
	if f.Actor != "" {
		em.Start(nameNode12)
		em.Text(f.Actor)
		em.End()
	}
	if f.Detail != nil {
		em.Start(nameDetail12)
		for _, n := range f.Detail.Children {
			xmldom.AppendNode(n, em)
		}
		em.End()
	}
	em.End()
}
