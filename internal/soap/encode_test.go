package soap

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

func newBodyEntry(op, payload string) *xmldom.Element {
	el := xmldom.NewElement(xmltext.Name{Prefix: "m", Local: op})
	el.DeclareNamespace("m", "urn:spi:Echo")
	data := el.AddElement(xmltext.Name{Local: "data"})
	data.SetAttr(xmltext.Name{Prefix: PrefixXSI, Local: "type"}, "xsd:string")
	data.SetText(payload)
	return el
}

func sampleEnvelopes() map[string]*Envelope {
	out := map[string]*Envelope{}
	for _, v := range []Version{V11, V12} {
		single := New()
		single.Version = v
		single.AddBody(newBodyEntry("echo", "payload"))
		out[fmt.Sprintf("single-%v", v)] = single

		packed := New()
		packed.Version = v
		pack := xmldom.NewElement(xmltext.Name{Prefix: "spi", Local: "Parallel_Method"})
		pack.DeclareNamespace("spi", "http://spi.ict.ac.cn/pack")
		for i := 0; i < 8; i++ {
			entry := newBodyEntry("echo", fmt.Sprintf("entry-%d <&> \"q\"", i))
			entry.SetAttr(xmltext.Name{Prefix: "spi", Local: "id"}, fmt.Sprint(i))
			pack.AddChild(entry)
		}
		packed.AddBody(pack)
		out[fmt.Sprintf("packed-%v", v)] = packed

		detail := xmldom.NewElement(xmltext.Name{Local: "detail"})
		detail.AddElement(xmltext.Name{Local: "info"}).SetText("broke <badly>")
		fault := &Fault{Code: FaultClient, String: "bad request & more", Actor: "urn:actor", Detail: detail}
		out[fmt.Sprintf("fault-%v", v)] = fault.EnvelopeFor(v)

		faultMin := &Fault{String: "plain"}
		out[fmt.Sprintf("fault-min-%v", v)] = faultMin.EnvelopeFor(v)

		withHeader := New()
		withHeader.Version = v
		hdr := xmldom.NewElement(xmltext.Name{Prefix: "h", Local: "Auth"})
		hdr.DeclareNamespace("h", "urn:spi:hdr")
		hdr.SetAttr(xmltext.Name{Prefix: PrefixEnvelope, Local: "mustUnderstand"}, "1")
		hdr.SetText("token")
		withHeader.AddHeader(hdr)
		withHeader.AddBody(newBodyEntry("echo", "with header"))
		out[fmt.Sprintf("header-%v", v)] = withHeader

		empty := New()
		empty.Version = v
		out[fmt.Sprintf("empty-body-%v", v)] = empty
	}
	return out
}

// TestStreamEncoderParity pins StreamEncoder byte-identical to the
// DOM-building Envelope.Encode for single, packed, fault, header-bearing
// and empty envelopes in both SOAP versions.
func TestStreamEncoderParity(t *testing.T) {
	for name, env := range sampleEnvelopes() {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := env.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			enc := NewStreamEncoder()
			defer enc.Release()
			got, err := enc.EncodeEnvelope(env)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, buf.Bytes()) {
				t.Fatalf("stream output diverged:\ndom:    %s\nstream: %s", buf.Bytes(), got)
			}
		})
	}
}

// TestFaultAppendElementForParity checks the streaming fault writer
// against the DOM fault element, including extra attributes in the
// position buildPackedResponse puts them.
func TestFaultAppendElementForParity(t *testing.T) {
	detail := xmldom.NewElement(xmltext.Name{Local: "detail"})
	detail.AddElement(xmltext.Name{Local: "code"}).SetText("E42")
	faults := []*Fault{
		{Code: FaultClient, String: "client side"},
		{Code: FaultServer, String: "server side", Actor: "urn:me"},
		{String: "defaulted code"},
		{Code: "Custom.Code", String: "esc <&> \"x\"", Detail: detail},
	}
	idAttr := xmltext.Name{Prefix: "spi", Local: "id"}
	for _, v := range []Version{V11, V12} {
		for i, f := range faults {
			for _, withExtra := range []bool{false, true} {
				el := f.ElementFor(v)
				var extras []xmltext.Attr
				if withExtra {
					el.SetAttr(idAttr, "7")
					extras = append(extras, xmltext.Attr{Name: idAttr, Value: "7"})
				}
				want := el.String()
				em := xmltext.AcquireEmitter()
				f.AppendElementFor(em, v, extras...)
				if err := em.Err(); err != nil {
					t.Fatal(err)
				}
				got := string(em.Bytes())
				xmltext.ReleaseEmitter(em)
				if got != want {
					t.Fatalf("fault %d v=%v extra=%v:\ndom:    %s\nstream: %s", i, v, withExtra, want, got)
				}
			}
		}
	}
}

// TestStreamEncoderPoolRecycling exercises acquire/encode/release across
// goroutines; run under -race via the race-pools make target.
func TestStreamEncoderPoolRecycling(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				env := New()
				payload := fmt.Sprintf("w%d-%d", seed, i)
				env.AddBody(newBodyEntry("echo", payload))
				var want bytes.Buffer
				if err := env.Encode(&want); err != nil {
					t.Errorf("encode: %v", err)
					return
				}
				enc := NewStreamEncoder()
				got, err := enc.EncodeEnvelope(env)
				if err != nil {
					t.Errorf("stream encode: %v", err)
					enc.Release()
					return
				}
				if !bytes.Equal(got, want.Bytes()) {
					t.Errorf("pooled encoder corrupted output for %s", payload)
				}
				enc.Release()
			}
		}(w)
	}
	wg.Wait()
}

func TestStreamEncoderReleaseIdempotent(t *testing.T) {
	enc := NewStreamEncoder()
	if _, err := enc.EncodeEnvelope(New()); err != nil {
		t.Fatal(err)
	}
	enc.Release()
	enc.Release() // second release must be a no-op
	var nilEnc *StreamEncoder
	nilEnc.Release() // nil-safe
}

// FuzzEncodeParity: any envelope the decoder accepts must stream-encode to
// exactly the bytes Envelope.Encode produces, and those bytes must decode
// back to an equivalent tree.
func FuzzEncodeParity(f *testing.F) {
	for _, env := range sampleEnvelopes() {
		var buf bytes.Buffer
		if err := env.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var want bytes.Buffer
		if err := env.Encode(&want); err != nil {
			return
		}
		enc := NewStreamEncoder()
		defer enc.Release()
		got, err := enc.EncodeEnvelope(env)
		if err != nil {
			t.Fatalf("stream encode failed where DOM encode succeeded: %v", err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("byte divergence:\ndom:    %q\nstream: %q", want.Bytes(), got)
		}
		reEnv, err := Decode(bytes.NewReader(got))
		if err != nil {
			t.Fatalf("stream output does not re-decode: %v", err)
		}
		if !xmldom.Equal(env.Element(), reEnv.Element()) {
			t.Fatalf("re-decoded tree differs:\nin:  %s\nout: %s", env.Element(), reEnv.Element())
		}
	})
}

func BenchmarkStreamEncodePacked16(b *testing.B) {
	env := New()
	pack := xmldom.NewElement(xmltext.Name{Prefix: "spi", Local: "Parallel_Method"})
	pack.DeclareNamespace("spi", "http://spi.ict.ac.cn/pack")
	for i := 0; i < 16; i++ {
		pack.AddChild(newBodyEntry("echo", "payload"))
	}
	env.AddBody(pack)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := NewStreamEncoder()
		if _, err := enc.EncodeEnvelope(env); err != nil {
			b.Fatal(err)
		}
		enc.Release()
	}
}
