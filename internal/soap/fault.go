package soap

import (
	"fmt"

	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// SOAP 1.1 fault codes (local parts; they are serialized as QNames in the
// envelope namespace).
const (
	// FaultVersionMismatch: the envelope namespace was not SOAP 1.1.
	FaultVersionMismatch = "VersionMismatch"
	// FaultMustUnderstand: a mustUnderstand header block was not understood.
	FaultMustUnderstand = "MustUnderstand"
	// FaultClient: the message was malformed or the caller is at fault.
	FaultClient = "Client"
	// FaultServer: processing failed for reasons not attributable to the message.
	FaultServer = "Server"
)

// Fault is a SOAP 1.1 Fault body entry.
type Fault struct {
	// Code is the local part of the fault code QName, e.g. "Client".
	Code string
	// String is the human-readable fault explanation.
	String string
	// Actor optionally identifies the node that faulted.
	Actor string
	// Detail optionally carries application-specific fault data.
	Detail *xmldom.Element
}

// Error implements the error interface so a *Fault can travel as a Go error.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap fault %s: %s", f.Code, f.String)
}

// Element builds the SOAP-ENV:Fault body entry for the fault.
func (f *Fault) Element() *xmldom.Element {
	el := xmldom.NewElement(xmltext.Name{Prefix: PrefixEnvelope, Local: "Fault"})
	code := f.Code
	if code == "" {
		code = FaultServer
	}
	el.AddElement(xmltext.Name{Local: "faultcode"}).SetText(PrefixEnvelope + ":" + code)
	el.AddElement(xmltext.Name{Local: "faultstring"}).SetText(f.String)
	if f.Actor != "" {
		el.AddElement(xmltext.Name{Local: "faultactor"}).SetText(f.Actor)
	}
	if f.Detail != nil {
		el.AddChild(f.Detail)
	}
	return el
}

// ElementFor builds the Fault body entry in the given envelope version's
// format: the flat faultcode/faultstring layout for SOAP 1.1, the
// Code/Value + Reason/Text layout for SOAP 1.2.
func (f *Fault) ElementFor(v Version) *xmldom.Element {
	if v != V12 {
		return f.Element()
	}
	el := xmldom.NewElement(xmltext.Name{Prefix: "env", Local: "Fault"})
	el.DeclareNamespace("env", NSEnvelope12)
	code := f.Code
	if code == "" {
		code = FaultServer
	}
	codeEl := el.AddElement(xmltext.Name{Prefix: "env", Local: "Code"})
	codeEl.AddElement(xmltext.Name{Prefix: "env", Local: "Value"}).SetText("env:" + faultCode12(code))
	reason := el.AddElement(xmltext.Name{Prefix: "env", Local: "Reason"})
	text := reason.AddElement(xmltext.Name{Prefix: "env", Local: "Text"})
	text.SetAttr(xmltext.Name{Prefix: "xml", Local: "lang"}, "en")
	text.SetText(f.String)
	if f.Actor != "" {
		el.AddElement(xmltext.Name{Prefix: "env", Local: "Node"}).SetText(f.Actor)
	}
	if f.Detail != nil {
		detail := el.AddElement(xmltext.Name{Prefix: "env", Local: "Detail"})
		for _, n := range f.Detail.Children {
			detail.AddChild(n)
		}
	}
	return el
}

// Envelope wraps the fault in a complete SOAP 1.1 envelope, ready to send.
func (f *Fault) Envelope() *Envelope {
	return f.EnvelopeFor(V11)
}

// EnvelopeFor wraps the fault in an envelope of the given version.
func (f *Fault) EnvelopeFor(v Version) *Envelope {
	env := New()
	env.Version = v
	env.AddBody(f.ElementFor(v))
	return env
}

// ClientFault returns a Client fault with a formatted message.
func ClientFault(format string, args ...any) *Fault {
	return &Fault{Code: FaultClient, String: fmt.Sprintf(format, args...)}
}

// ServerFault returns a Server fault with a formatted message.
func ServerFault(format string, args ...any) *Fault {
	return &Fault{Code: FaultServer, String: fmt.Sprintf(format, args...)}
}

// AsFault converts any error to a *Fault: an error that already is a fault
// passes through; anything else becomes a Server fault carrying the error
// text.
func AsFault(err error) *Fault {
	if err == nil {
		return nil
	}
	if f, ok := err.(*Fault); ok {
		return f
	}
	return ServerFault("%v", err)
}
