package soap

import (
	"bytes"
	"testing"
)

// FuzzParseEnvelope checks the decode path on arbitrary documents: it must
// never panic, and any document it accepts must survive an encode/decode
// round trip (whatever we parsed, we can serialize and parse again).
func FuzzParseEnvelope(f *testing.F) {
	const env11 = `<SOAP-ENV:Envelope xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/">`
	const env12 = `<env:Envelope xmlns:env="http://www.w3.org/2003/05/soap-envelope">`
	for _, seed := range []string{
		``,
		`<?xml version="1.0" encoding="UTF-8"?>` + env11 + `<SOAP-ENV:Body><m:echo xmlns:m="urn:spi:Echo"><message>hi</message></m:echo></SOAP-ENV:Body></SOAP-ENV:Envelope>`,
		env12 + `<env:Body><m:echo xmlns:m="urn:spi:Echo"/></env:Body></env:Envelope>`,
		env11 + `<SOAP-ENV:Header><h:tok xmlns:h="urn:h" SOAP-ENV:mustUnderstand="1"/></SOAP-ENV:Header><SOAP-ENV:Body/></SOAP-ENV:Envelope>`,
		env11 + `<SOAP-ENV:Body><SOAP-ENV:Fault><faultcode>SOAP-ENV:Server</faultcode><faultstring>boom</faultstring></SOAP-ENV:Fault></SOAP-ENV:Body></SOAP-ENV:Envelope>`,
		env11 + `<SOAP-ENV:Body><spi:Parallel_Method xmlns:spi="http://spi.ict.ac.cn/pack"><m:a xmlns:m="urn:a" spi:id="0" spi:service="A"/><m:b xmlns:m="urn:b" spi:id="1" spi:service="B"/></spi:Parallel_Method></SOAP-ENV:Body></SOAP-ENV:Envelope>`,
		`<Envelope xmlns="urn:not-soap"><Body/></Envelope>`,
		`<SOAP-ENV:Envelope xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/">`,
		env11 + `<SOAP-ENV:Body>`,
		`<a/>`,
		`not xml at all`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := env.Encode(&buf); err != nil {
			t.Fatalf("accepted envelope failed to encode: %v", err)
		}
		env2, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of own output failed: %v\noutput: %s", err, buf.Bytes())
		}
		if env2.Version != env.Version {
			t.Fatalf("version changed across round trip: %v -> %v", env.Version, env2.Version)
		}
		if len(env2.Body) != len(env.Body) || len(env2.Header) != len(env.Header) {
			t.Fatalf("structure changed across round trip: body %d->%d header %d->%d",
				len(env.Body), len(env2.Body), len(env.Header), len(env2.Header))
		}
	})
}
