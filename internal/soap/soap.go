// Package soap implements the SOAP 1.1 envelope: construction, parsing,
// header blocks and faults.
//
// It follows the subset of the SOAP 1.1 specification that RPC-style web
// services of the paper's era actually used — an Envelope with an optional
// Header and a mandatory Body whose entries are RPC request/response
// elements or a Fault. Typed parameter encoding lives in package soapenc;
// the packed Parallel_Method extension lives in package core.
package soap

import (
	"fmt"
	"io"

	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// Namespace URIs and conventional prefixes of the SOAP 1.1 stack.
const (
	// NSEnvelope is the SOAP 1.1 envelope namespace.
	NSEnvelope = "http://schemas.xmlsoap.org/soap/envelope/"
	// NSEncoding is the SOAP 1.1 encoding namespace (section 5 encoding).
	NSEncoding = "http://schemas.xmlsoap.org/soap/encoding/"
	// NSXSI is the XML Schema instance namespace (xsi:type, xsi:nil).
	NSXSI = "http://www.w3.org/2001/XMLSchema-instance"
	// NSXSD is the XML Schema datatypes namespace (xsd:int, xsd:string, ...).
	NSXSD = "http://www.w3.org/2001/XMLSchema"

	// PrefixEnvelope is the conventional envelope prefix, matching the
	// gSOAP/Axis output shown in the paper's Figure 4.
	PrefixEnvelope = "SOAP-ENV"
	// PrefixEncoding is the conventional encoding prefix.
	PrefixEncoding = "SOAP-ENC"
	// PrefixXSI is the conventional xsi prefix.
	PrefixXSI = "xsi"
	// PrefixXSD is the conventional xsd prefix.
	PrefixXSD = "xsd"
)

// Envelope is a SOAP message: optional header blocks plus body entries.
type Envelope struct {
	// Version is the envelope version (V11 unless set or parsed otherwise).
	Version Version
	// Header holds the header blocks, in order. Nil means no Header element.
	Header []*xmldom.Element
	// Body holds the body entries, in order. An RPC message has exactly one;
	// a fault message has a single Fault element (see Fault method).
	Body []*xmldom.Element
}

// New returns an empty envelope.
func New() *Envelope { return &Envelope{} }

// AddHeader appends a header block.
func (env *Envelope) AddHeader(block *xmldom.Element) {
	env.Header = append(env.Header, block)
}

// AddBody appends a body entry.
func (env *Envelope) AddBody(entry *xmldom.Element) {
	env.Body = append(env.Body, entry)
}

// Element builds the full DOM for the envelope. The standard namespace
// declarations (SOAP-ENV, SOAP-ENC, xsi, xsd) are placed on the root, again
// matching the toolkit output reproduced in the paper's Figure 4. SOAP 1.2
// envelopes differ only in the envelope namespace bound to the prefix.
func (env *Envelope) Element() *xmldom.Element {
	root := xmldom.NewElement(xmltext.Name{Prefix: PrefixEnvelope, Local: "Envelope"})
	root.DeclareNamespace(PrefixEnvelope, env.Version.Namespace())
	root.DeclareNamespace(PrefixEncoding, NSEncoding)
	root.DeclareNamespace(PrefixXSI, NSXSI)
	root.DeclareNamespace(PrefixXSD, NSXSD)
	if len(env.Header) > 0 {
		hdr := root.AddElement(xmltext.Name{Prefix: PrefixEnvelope, Local: "Header"})
		for _, b := range env.Header {
			hdr.AddChild(b)
		}
	}
	body := root.AddElement(xmltext.Name{Prefix: PrefixEnvelope, Local: "Body"})
	for _, e := range env.Body {
		body.AddChild(e)
	}
	return root
}

// Encode serializes the envelope as a complete XML document to w.
func (env *Envelope) Encode(w io.Writer) error {
	return env.Element().WriteDocument(w)
}

// Decode parses a SOAP 1.1 envelope from r.
func Decode(r io.Reader) (*Envelope, error) {
	root, err := xmldom.Parse(r)
	if err != nil {
		return nil, fmt.Errorf("soap: %w", err)
	}
	return FromElement(root)
}

// VersionMismatchError reports an Envelope element in an unrecognized
// namespace — per SOAP 1.1 §4.4, the receiver must answer with a
// VersionMismatch fault.
type VersionMismatchError struct {
	Namespace string
}

// Error implements the error interface.
func (e *VersionMismatchError) Error() string {
	return fmt.Sprintf("soap: envelope namespace %q is neither SOAP 1.1 nor SOAP 1.2", e.Namespace)
}

// FromElement interprets an already-parsed document as a SOAP envelope,
// accepting both SOAP 1.1 and SOAP 1.2.
func FromElement(root *xmldom.Element) (*Envelope, error) {
	env := New()
	switch {
	case root.Is(NSEnvelope, "Envelope"):
		env.Version = V11
	case root.Is(NSEnvelope12, "Envelope"):
		env.Version = V12
	case root.Name.Local == "Envelope":
		return nil, &VersionMismatchError{Namespace: root.Namespace()}
	default:
		return nil, fmt.Errorf("soap: root element is {%s}%s, not a SOAP Envelope",
			root.Namespace(), root.Name.Local)
	}
	nsEnv := env.Version.Namespace()
	var sawBody bool
	for _, child := range root.ChildElements() {
		switch {
		case child.Is(nsEnv, "Header"):
			if sawBody {
				return nil, fmt.Errorf("soap: Header after Body")
			}
			env.Header = append(env.Header, child.ChildElements()...)
		case child.Is(nsEnv, "Body"):
			if sawBody {
				return nil, fmt.Errorf("soap: multiple Body elements")
			}
			sawBody = true
			env.Body = append(env.Body, child.ChildElements()...)
		default:
			return nil, fmt.Errorf("soap: unexpected envelope child {%s}%s",
				child.Namespace(), child.Name.Local)
		}
	}
	if !sawBody {
		return nil, fmt.Errorf("soap: envelope has no Body")
	}
	return env, nil
}

// MustUnderstandHeaders returns the header blocks flagged with
// SOAP-ENV:mustUnderstand="1". A receiver that does not recognize one of
// them is required to fault with a MustUnderstand fault code.
func (env *Envelope) MustUnderstandHeaders() []*xmldom.Element {
	var out []*xmldom.Element
	nsEnv := env.Version.Namespace()
	for _, h := range env.Header {
		for _, a := range h.Attrs {
			if a.Name.Local != "mustUnderstand" {
				continue
			}
			if uri, ok := h.ResolvePrefix(a.Name.Prefix); ok && uri == nsEnv {
				if a.Value == "1" || a.Value == "true" {
					out = append(out, h)
				}
			}
		}
	}
	return out
}

// Fault returns the fault carried by the envelope body, or nil if the
// message is not a fault. Codes are normalized to their SOAP 1.1 names
// (Client/Server) regardless of envelope version.
func (env *Envelope) Fault() *Fault {
	if len(env.Body) != 1 {
		return nil
	}
	el := env.Body[0]
	if !el.Is(env.Version.Namespace(), "Fault") {
		return nil
	}
	if env.Version == V12 {
		return parseFault12(el)
	}
	f := &Fault{}
	if c := el.Child("", "faultcode"); c != nil {
		// The fault code is a QName in the envelope namespace by convention;
		// store just the local part ("Client", "Server", ...).
		f.Code = xmltext.ParseName(c.Text()).Local
	}
	if c := el.Child("", "faultstring"); c != nil {
		f.String = c.Text()
	}
	if c := el.Child("", "faultactor"); c != nil {
		f.Actor = c.Text()
	}
	if c := el.Child("", "detail"); c != nil {
		f.Detail = c
	}
	return f
}

// parseFault12 decodes a SOAP 1.2 Fault element.
func parseFault12(el *xmldom.Element) *Fault {
	f := &Fault{}
	if code := el.Child(NSEnvelope12, "Code"); code != nil {
		if v := code.Child(NSEnvelope12, "Value"); v != nil {
			f.Code = faultCode11(xmltext.ParseName(v.Text()).Local)
		}
	}
	if reason := el.Child(NSEnvelope12, "Reason"); reason != nil {
		if tx := reason.Child(NSEnvelope12, "Text"); tx != nil {
			f.String = tx.Text()
		}
	}
	if node := el.Child(NSEnvelope12, "Node"); node != nil {
		f.Actor = node.Text()
	}
	if d := el.Child(NSEnvelope12, "Detail"); d != nil {
		f.Detail = d
	}
	return f
}
