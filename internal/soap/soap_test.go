package soap

import (
	"strings"
	"testing"

	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

func TestEnvelopeEncodeDecode(t *testing.T) {
	env := New()
	hdr := xmldom.NewElement(xmltext.Name{Local: "TraceID"})
	hdr.DeclareNamespace("", "urn:trace")
	hdr.SetText("abc-123")
	env.AddHeader(hdr)

	op := xmldom.NewElement(xmltext.Name{Local: "Echo"})
	op.DeclareNamespace("", "urn:echo")
	op.AddElement(xmltext.Name{Local: "msg"}).SetText("hello")
	env.AddBody(op)

	var b strings.Builder
	if err := env.Encode(&b); err != nil {
		t.Fatal(err)
	}
	doc := b.String()
	if !strings.Contains(doc, `<?xml version="1.0"`) {
		t.Error("missing XML declaration")
	}
	if !strings.Contains(doc, PrefixEnvelope+":Envelope") {
		t.Error("missing envelope element")
	}

	env2, err := Decode(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(env2.Header) != 1 || env2.Header[0].Text() != "abc-123" {
		t.Errorf("header round trip = %v", env2.Header)
	}
	if len(env2.Body) != 1 {
		t.Fatalf("body entries = %d", len(env2.Body))
	}
	got := env2.Body[0]
	if !got.Is("urn:echo", "Echo") {
		t.Errorf("body entry = {%s}%s", got.Namespace(), got.Name.Local)
	}
	if got.Child("urn:echo", "msg").Text() != "hello" {
		t.Error("msg text lost")
	}
}

func TestEnvelopeNoHeader(t *testing.T) {
	env := New()
	env.AddBody(xmldom.NewElement(xmltext.Name{Local: "Op"}))
	var b strings.Builder
	if err := env.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "Header") {
		t.Error("empty Header element emitted")
	}
	env2, err := Decode(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if env2.Header != nil {
		t.Errorf("header = %v, want nil", env2.Header)
	}
}

func TestDecodeRejectsNonEnvelope(t *testing.T) {
	cases := []string{
		`<NotAnEnvelope/>`,
		`<e:Envelope xmlns:e="urn:wrong"><e:Body/></e:Envelope>`,
		`<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"></e:Envelope>`, // no body
		`<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"><e:Body/><e:Body/></e:Envelope>`,
		`<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"><e:Body/><e:Header/></e:Envelope>`,
		`<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"><e:Bogus/><e:Body/></e:Envelope>`,
		`not xml at all`,
	}
	for _, src := range cases {
		if _, err := Decode(strings.NewReader(src)); err == nil {
			t.Errorf("Decode(%q) succeeded, want error", src)
		}
	}
}

func TestFaultRoundTrip(t *testing.T) {
	f := ClientFault("bad parameter %q", "x")
	f.Actor = "urn:test-actor"
	detail := xmldom.NewElement(xmltext.Name{Local: "info"})
	detail.SetText("42")
	wrap := xmldom.NewElement(xmltext.Name{Local: "detail"})
	wrap.AddChild(detail)
	f.Detail = wrap

	var b strings.Builder
	if err := f.Envelope().Encode(&b); err != nil {
		t.Fatal(err)
	}
	env, err := Decode(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	got := env.Fault()
	if got == nil {
		t.Fatal("fault not recognized")
	}
	if got.Code != FaultClient {
		t.Errorf("code = %q", got.Code)
	}
	if got.String != `bad parameter "x"` {
		t.Errorf("string = %q", got.String)
	}
	if got.Actor != "urn:test-actor" {
		t.Errorf("actor = %q", got.Actor)
	}
	if got.Detail == nil || got.Detail.Child("", "info").Text() != "42" {
		t.Errorf("detail = %v", got.Detail)
	}
	if !strings.Contains(got.Error(), "bad parameter") {
		t.Errorf("Error() = %q", got.Error())
	}
}

func TestFaultOnNonFaultBody(t *testing.T) {
	env := New()
	env.AddBody(xmldom.NewElement(xmltext.Name{Local: "Op"}))
	if env.Fault() != nil {
		t.Error("non-fault body reported as fault")
	}
}

func TestDefaultFaultCode(t *testing.T) {
	f := &Fault{String: "boom"}
	el := f.Element()
	if code := el.Child("", "faultcode").Text(); code != PrefixEnvelope+":"+FaultServer {
		t.Errorf("default code = %q", code)
	}
}

func TestAsFault(t *testing.T) {
	if AsFault(nil) != nil {
		t.Error("AsFault(nil) != nil")
	}
	f := ClientFault("x")
	if AsFault(f) != f {
		t.Error("AsFault did not pass fault through")
	}
	g := AsFault(errBoom{})
	if g.Code != FaultServer || g.String != "boom" {
		t.Errorf("AsFault(errBoom) = %+v", g)
	}
}

type errBoom struct{}

func (errBoom) Error() string { return "boom" }

func TestMustUnderstandHeaders(t *testing.T) {
	doc := `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/">
	  <e:Header>
	    <a xmlns="urn:a" e:mustUnderstand="1"/>
	    <b xmlns="urn:b"/>
	    <c xmlns="urn:c" e:mustUnderstand="0"/>
	  </e:Header>
	  <e:Body><Op xmlns="urn:x"/></e:Body>
	</e:Envelope>`
	env, err := Decode(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	mu := env.MustUnderstandHeaders()
	if len(mu) != 1 || mu[0].Name.Local != "a" {
		t.Errorf("mustUnderstand headers = %v", mu)
	}
}

func TestFigureStyleEnvelopeShape(t *testing.T) {
	// The serialized envelope must carry the four standard namespace
	// declarations the paper's Figure 4 shows on the root element.
	env := New()
	env.AddBody(xmldom.NewElement(xmltext.Name{Local: "Op"}))
	doc := env.Element().String()
	for _, want := range []string{
		`xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/"`,
		`xmlns:SOAP-ENC="http://schemas.xmlsoap.org/soap/encoding/"`,
		`xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"`,
		`xmlns:xsd="http://www.w3.org/2001/XMLSchema"`,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("envelope missing %s:\n%s", want, doc)
		}
	}
}
