package soap

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// StreamDecoder decodes a SOAP envelope incrementally: the preamble
// (root, headers, Body start) first, then one body entry — or one child of
// a body entry — at a time. The server's packed-request fast path uses it
// to hand each Parallel_Method entry to the application stage as soon as
// its subtree closes, instead of waiting for the whole envelope.
//
// The decoder reproduces Decode's observable behaviour: the same trees
// (entries keep their parent chain up to the Envelope, so namespace
// resolution works), the same errors for the same malformed documents.
// The one intentional difference is *when* errors surface — a document
// whose tail is malformed fails at Finish, after earlier entries have
// already been delivered. Callers that cannot tolerate that (signature
// verification, differential caching) must use Decode.
//
// All nodes come from the arena passed to NewStreamDecoder and follow the
// arena lifecycle contract; a nil arena falls back to the heap.
//
// Call sequence: ReadPreamble, then NextEntryStart until it returns nil.
// Each started entry must be finished — either CompleteEntry, or NextChild
// until it returns nil — before the next NextEntryStart. Finish validates
// the envelope tail and returns the assembled Envelope.
type StreamDecoder struct {
	tk    *xmltext.Tokenizer
	arena *xmldom.Arena

	env   *Envelope
	nsEnv string
	root  *xmldom.Element
	body  *xmldom.Element

	state streamState
}

type streamState int

const (
	streamInit streamState = iota
	streamInBody
	streamInEntry
	streamBodyDone
	streamDone
)

// NewStreamDecoder returns a decoder reading one envelope from r,
// allocating all nodes from a (heap if nil).
func NewStreamDecoder(r io.Reader, a *xmldom.Arena) *StreamDecoder {
	tk := xmltext.NewTokenizer(r)
	tk.SetRawText(true)
	tk.SetReuseTokenAttrs(true)
	return &StreamDecoder{tk: tk, arena: a, env: New()}
}

// streamDecoderPool recycles StreamDecoders (and, through them, pooled
// tokenizers) across requests on the server's streaming fast path.
var streamDecoderPool = sync.Pool{New: func() any { return &StreamDecoder{} }}

// AcquireStreamDecoder is NewStreamDecoder over an in-memory document on
// pooled machinery: the decoder, its tokenizer and the tokenizer's read
// buffer are all reused across requests. Call Release when the exchange is
// over; after that the decoder AND the Envelope it produced are invalid
// (the nodes inside follow the arena's lifecycle as usual). Callers that
// let the envelope outlive the exchange must use NewStreamDecoder.
func AcquireStreamDecoder(body []byte, a *xmldom.Arena) *StreamDecoder {
	d := streamDecoderPool.Get().(*StreamDecoder)
	tk := xmltext.AcquireTokenizer(body)
	tk.SetRawText(true)
	tk.SetReuseTokenAttrs(true)
	if d.env == nil {
		d.env = New()
	} else {
		*d.env = Envelope{}
	}
	d.tk = tk
	d.arena = a
	d.nsEnv = ""
	d.root, d.body = nil, nil
	d.state = streamInit
	return d
}

// Release returns a decoder obtained from AcquireStreamDecoder to the
// pool. Safe on any decoder state, including after errors.
func (d *StreamDecoder) Release() {
	if d.tk != nil {
		xmltext.ReleaseTokenizer(d.tk)
		d.tk = nil
	}
	if d.env != nil {
		// Drop header/body references so the pool never pins request trees.
		*d.env = Envelope{}
	}
	d.arena = nil
	d.root, d.body = nil, nil
	streamDecoderPool.Put(d)
}

// ReadPreamble consumes tokens up to and including the Body start tag:
// the envelope root is validated, headers (if any) are fully parsed into
// Envelope().Header, and the decoder is left positioned at the first body
// entry.
func (d *StreamDecoder) ReadPreamble() error {
	if d.state != streamInit {
		return fmt.Errorf("soap: ReadPreamble called twice")
	}
	// Prolog: skip everything before the root start tag, as Parse does.
	for {
		tok, err := d.tk.Next()
		if err == io.EOF {
			return fmt.Errorf("soap: %w", errEmptyEnvelope)
		}
		if err != nil {
			return fmt.Errorf("soap: %w", err)
		}
		if tok.Kind != xmltext.KindStartElement {
			continue
		}
		d.root = xmldom.StartElementNode(d.arena, &tok, nil)
		break
	}
	switch {
	case d.root.Is(NSEnvelope, "Envelope"):
		d.env.Version = V11
	case d.root.Is(NSEnvelope12, "Envelope"):
		d.env.Version = V12
	case d.root.Name.Local == "Envelope":
		return &VersionMismatchError{Namespace: d.root.Namespace()}
	default:
		return fmt.Errorf("soap: root element is {%s}%s, not a SOAP Envelope",
			d.root.Namespace(), d.root.Name.Local)
	}
	d.nsEnv = d.env.Version.Namespace()
	// Envelope children until Body: Header blocks parse eagerly (they are
	// small and the server needs them before dispatching anything).
	for {
		tok, err := d.tk.Next()
		if err != nil {
			return d.wrapTokenErr(err)
		}
		switch tok.Kind {
		case xmltext.KindStartElement:
			child := xmldom.StartElementNode(d.arena, &tok, d.root)
			switch {
			case child.Is(d.nsEnv, "Header"):
				if err := xmldom.CompleteSubtree(d.tk, d.arena, child); err != nil {
					return d.wrapTokenErr(err)
				}
				d.env.Header = append(d.env.Header, child.ChildElements()...)
			case child.Is(d.nsEnv, "Body"):
				d.body = child
				d.state = streamInBody
				return nil
			default:
				return fmt.Errorf("soap: unexpected envelope child {%s}%s",
					child.Namespace(), child.Name.Local)
			}
		case xmltext.KindEndElement:
			// Root closed without a Body.
			return fmt.Errorf("soap: envelope has no Body")
		case xmltext.KindText:
			xmldom.AppendText(d.arena, d.root, d.tk.TokenBytes())
		case xmltext.KindComment:
			d.root.AddChild(&xmldom.Comment{Data: tok.Text})
		}
	}
}

// Envelope returns the envelope under construction. After ReadPreamble the
// version and headers are populated; Body entries accumulate as they are
// decoded and the slice is completed by Finish.
func (d *StreamDecoder) Envelope() *Envelope { return d.env }

// NextEntryStart reads up to the start tag of the next body entry and
// returns the started element — attributes present, children not yet
// parsed. It returns (nil, nil) when the Body end tag is reached. The
// caller inspects the element (is it a packed request?) and then finishes
// it with CompleteEntry or NextChild.
func (d *StreamDecoder) NextEntryStart() (*xmldom.Element, error) {
	if d.state != streamInBody {
		return nil, fmt.Errorf("soap: NextEntryStart in wrong state")
	}
	for {
		tok, err := d.tk.Next()
		if err != nil {
			return nil, d.wrapTokenErr(err)
		}
		switch tok.Kind {
		case xmltext.KindStartElement:
			el := xmldom.StartElementNode(d.arena, &tok, d.body)
			d.state = streamInEntry
			return el, nil
		case xmltext.KindEndElement:
			d.state = streamBodyDone
			return nil, nil
		case xmltext.KindText:
			xmldom.AppendText(d.arena, d.body, d.tk.TokenBytes())
		case xmltext.KindComment:
			d.body.AddChild(&xmldom.Comment{Data: tok.Text})
		}
	}
}

// CompleteEntry parses the rest of the entry subtree started by
// NextEntryStart (a no-op beyond the pending end token for a self-closing
// entry).
func (d *StreamDecoder) CompleteEntry(el *xmldom.Element) error {
	if d.state != streamInEntry {
		return fmt.Errorf("soap: CompleteEntry in wrong state")
	}
	if err := xmldom.CompleteSubtree(d.tk, d.arena, el); err != nil {
		return d.wrapTokenErr(err)
	}
	d.state = streamInBody
	return nil
}

// NextChild parses and returns the next child element of the entry started
// by NextEntryStart, subtree complete. Text and comments between children
// are attached to the entry as they are encountered. It returns (nil, nil)
// when the entry's end tag is reached, after which the next NextEntryStart
// may be issued. This is the packed-dispatch workhorse: each
// Parallel_Method child is delivered as its subtree closes.
func (d *StreamDecoder) NextChild(entry *xmldom.Element) (*xmldom.Element, error) {
	if d.state != streamInEntry {
		return nil, fmt.Errorf("soap: NextChild in wrong state")
	}
	for {
		tok, err := d.tk.Next()
		if err != nil {
			return nil, d.wrapTokenErr(err)
		}
		switch tok.Kind {
		case xmltext.KindStartElement:
			child := xmldom.StartElementNode(d.arena, &tok, entry)
			if err := xmldom.CompleteSubtree(d.tk, d.arena, child); err != nil {
				return nil, d.wrapTokenErr(err)
			}
			return child, nil
		case xmltext.KindEndElement:
			d.state = streamInBody
			return nil, nil
		case xmltext.KindText:
			xmldom.AppendText(d.arena, entry, d.tk.TokenBytes())
		case xmltext.KindComment:
			entry.AddChild(&xmldom.Comment{Data: tok.Text})
		}
	}
}

// Finish consumes the remainder of the document after the Body, applying
// the same envelope-shape checks Decode performs (Header after Body,
// multiple Bodies, unexpected children, trailing junk) and returns the
// assembled Envelope.
func (d *StreamDecoder) Finish() (*Envelope, error) {
	switch d.state {
	case streamBodyDone:
	case streamInBody:
		// Caller stopped between entries: drain the rest of the Body so the
		// envelope is complete and tail errors still surface.
		for {
			el, err := d.NextEntryStart()
			if err != nil {
				return nil, err
			}
			if el == nil {
				break
			}
			if err := d.CompleteEntry(el); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("soap: Finish in wrong state")
	}
	for {
		tok, err := d.tk.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, d.wrapTokenErr(err)
		}
		switch tok.Kind {
		case xmltext.KindStartElement:
			child := xmldom.StartElementNode(d.arena, &tok, d.root)
			switch {
			case child.Is(d.nsEnv, "Header"):
				return nil, fmt.Errorf("soap: Header after Body")
			case child.Is(d.nsEnv, "Body"):
				return nil, fmt.Errorf("soap: multiple Body elements")
			default:
				return nil, fmt.Errorf("soap: unexpected envelope child {%s}%s",
					child.Namespace(), child.Name.Local)
			}
		case xmltext.KindEndElement:
			// Root end; keep reading to surface trailing-junk errors,
			// exactly as a full Parse would.
		}
	}
	d.state = streamDone
	d.env.Body = append(d.env.Body, d.body.ChildElements()...)
	return d.env, nil
}

// wrapTokenErr adds the soap: prefix Decode errors carry, preserving EOF
// as a truncation error rather than a clean end.
func (d *StreamDecoder) wrapTokenErr(err error) error {
	if err == io.EOF {
		return fmt.Errorf("soap: unexpected EOF inside envelope")
	}
	return fmt.Errorf("soap: %w", err)
}

var errEmptyEnvelope = fmt.Errorf("empty document")

// DecodeArena is Decode with arena allocation: the whole tree is parsed
// into a before envelope interpretation. It is the buffered counterpart of
// StreamDecoder for paths (differential cache, canonicalization) that need
// the complete document up front, and the fast path for clients decoding
// responses they fully consume before releasing the arena.
func DecodeArena(r io.Reader, a *xmldom.Arena) (*Envelope, error) {
	root, err := xmldom.ParseInArena(r, a)
	if err != nil {
		return nil, fmt.Errorf("soap: %w", err)
	}
	return FromElement(root)
}

// DecodeArenaBytes is DecodeArena over an in-memory document, parsed on a
// pooled tokenizer — the client's response-decode hot path.
func DecodeArenaBytes(b []byte, a *xmldom.Arena) (*Envelope, error) {
	root, err := xmldom.ParseBytesInArena(b, a)
	if err != nil {
		return nil, fmt.Errorf("soap: %w", err)
	}
	return FromElement(root)
}
