package soap

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// StreamDecoder decodes a SOAP envelope incrementally: the preamble
// (root, headers, Body start) first, then one body entry — or one child of
// a body entry — at a time. The server's packed-request fast path uses it
// to hand each Parallel_Method entry to the application stage as soon as
// its subtree closes, instead of waiting for the whole envelope.
//
// The decoder reproduces Decode's observable behaviour: the same trees
// (entries keep their parent chain up to the Envelope, so namespace
// resolution works), the same errors for the same malformed documents.
// The one intentional difference is *when* errors surface — a document
// whose tail is malformed fails at Finish, after earlier entries have
// already been delivered. For callers that need the bytes as well as the
// trees, the Acquire mode tees out verbatim spans: per-entry subtree spans
// for differential caching (NextChildSpan, CompleteEntrySpan) and the
// concatenation of all body entries for signature verification
// (BodySpans), so neither forces a second pass over the document.
//
// All nodes come from the arena passed to NewStreamDecoder and follow the
// arena lifecycle contract; a nil arena falls back to the heap.
//
// Call sequence: ReadPreamble, then NextEntryStart until it returns nil.
// Each started entry must be finished — either CompleteEntry, or NextChild
// until it returns nil — before the next NextEntryStart. Finish validates
// the envelope tail and returns the assembled Envelope.
type StreamDecoder struct {
	tk    *xmltext.Tokenizer
	arena *xmldom.Arena

	env   *Envelope
	nsEnv string
	root  *xmldom.Element
	body  *xmldom.Element

	state streamState

	// Raw-span tracking, available only in AcquireStreamDecoder mode (src
	// non-nil). Spans alias src and share its lifetime: the per-entry parse
	// cache hashes them and header processors verify signatures over them,
	// both before the request buffer is recycled.
	src        []byte
	rootTag    []byte   // the root element's start tag, verbatim
	bodyTag    []byte   // the Body element's start tag, verbatim
	entryTag   []byte   // the current entry's start tag, verbatim
	entryStart int64    // offset of the current entry's '<'
	spans      [][]byte // raw span of each completed body entry, in order
}

type streamState int

const (
	streamInit streamState = iota
	streamInBody
	streamInEntry
	streamBodyDone
	streamDone
)

// NewStreamDecoder returns a decoder reading one envelope from r,
// allocating all nodes from a (heap if nil).
func NewStreamDecoder(r io.Reader, a *xmldom.Arena) *StreamDecoder {
	tk := xmltext.NewTokenizer(r)
	tk.SetRawText(true)
	tk.SetReuseTokenAttrs(true)
	return &StreamDecoder{tk: tk, arena: a, env: New()}
}

// streamDecoderPool recycles StreamDecoders (and, through them, pooled
// tokenizers) across requests on the server's streaming fast path.
var streamDecoderPool = sync.Pool{New: func() any { return &StreamDecoder{} }}

// AcquireStreamDecoder is NewStreamDecoder over an in-memory document on
// pooled machinery: the decoder, its tokenizer and the tokenizer's read
// buffer are all reused across requests. Call Release when the exchange is
// over; after that the decoder AND the Envelope it produced are invalid
// (the nodes inside follow the arena's lifecycle as usual). Callers that
// let the envelope outlive the exchange must use NewStreamDecoder.
func AcquireStreamDecoder(body []byte, a *xmldom.Arena) *StreamDecoder {
	d := streamDecoderPool.Get().(*StreamDecoder)
	tk := xmltext.AcquireTokenizer(body)
	tk.SetRawText(true)
	tk.SetReuseTokenAttrs(true)
	if d.env == nil {
		d.env = New()
	} else {
		*d.env = Envelope{}
	}
	d.tk = tk
	d.arena = a
	d.nsEnv = ""
	d.root, d.body = nil, nil
	d.state = streamInit
	d.src = body
	d.rootTag, d.bodyTag, d.entryTag = nil, nil, nil
	d.entryStart = 0
	clear(d.spans)
	d.spans = d.spans[:0]
	return d
}

// Release returns a decoder obtained from AcquireStreamDecoder to the
// pool. Safe on any decoder state, including after errors.
func (d *StreamDecoder) Release() {
	if d.tk != nil {
		xmltext.ReleaseTokenizer(d.tk)
		d.tk = nil
	}
	if d.env != nil {
		// Drop header/body references so the pool never pins request trees.
		*d.env = Envelope{}
	}
	d.arena = nil
	d.root, d.body = nil, nil
	d.src, d.rootTag, d.bodyTag, d.entryTag = nil, nil, nil, nil
	clear(d.spans)
	d.spans = d.spans[:0]
	streamDecoderPool.Put(d)
}

// ReadPreamble consumes tokens up to and including the Body start tag:
// the envelope root is validated, headers (if any) are fully parsed into
// Envelope().Header, and the decoder is left positioned at the first body
// entry.
func (d *StreamDecoder) ReadPreamble() error {
	if d.state != streamInit {
		return fmt.Errorf("soap: ReadPreamble called twice")
	}
	// Prolog: skip everything before the root start tag, as Parse does.
	for {
		pos := d.tk.InputOffset()
		tok, err := d.tk.Next()
		if err == io.EOF {
			return fmt.Errorf("soap: %w", errEmptyEnvelope)
		}
		if err != nil {
			return fmt.Errorf("soap: %w", err)
		}
		if tok.Kind != xmltext.KindStartElement {
			continue
		}
		d.root = xmldom.StartElementNode(d.arena, &tok, nil)
		if d.src != nil {
			d.rootTag = d.src[pos:d.tk.InputOffset()]
		}
		break
	}
	switch {
	case d.root.Is(NSEnvelope, "Envelope"):
		d.env.Version = V11
	case d.root.Is(NSEnvelope12, "Envelope"):
		d.env.Version = V12
	case d.root.Name.Local == "Envelope":
		return &VersionMismatchError{Namespace: d.root.Namespace()}
	default:
		return fmt.Errorf("soap: root element is {%s}%s, not a SOAP Envelope",
			d.root.Namespace(), d.root.Name.Local)
	}
	d.nsEnv = d.env.Version.Namespace()
	// Envelope children until Body: Header blocks parse eagerly (they are
	// small and the server needs them before dispatching anything).
	for {
		pos := d.tk.InputOffset()
		tok, err := d.tk.Next()
		if err != nil {
			return d.wrapTokenErr(err)
		}
		switch tok.Kind {
		case xmltext.KindStartElement:
			child := xmldom.StartElementNode(d.arena, &tok, d.root)
			switch {
			case child.Is(d.nsEnv, "Header"):
				if err := xmldom.CompleteSubtree(d.tk, d.arena, child); err != nil {
					return d.wrapTokenErr(err)
				}
				d.env.Header = append(d.env.Header, child.ChildElements()...)
			case child.Is(d.nsEnv, "Body"):
				d.body = child
				if d.src != nil {
					d.bodyTag = d.src[pos:d.tk.InputOffset()]
				}
				d.state = streamInBody
				return nil
			default:
				return fmt.Errorf("soap: unexpected envelope child {%s}%s",
					child.Namespace(), child.Name.Local)
			}
		case xmltext.KindEndElement:
			// Root closed without a Body.
			return fmt.Errorf("soap: envelope has no Body")
		case xmltext.KindText:
			xmldom.AppendText(d.arena, d.root, d.tk.TokenBytes())
		case xmltext.KindComment:
			d.root.AddChild(&xmldom.Comment{Data: tok.Text})
		}
	}
}

// Envelope returns the envelope under construction. After ReadPreamble the
// version and headers are populated; Body entries accumulate as they are
// decoded and the slice is completed by Finish.
func (d *StreamDecoder) Envelope() *Envelope { return d.env }

// Arena exposes the arena nodes are allocated from (nil in heap mode), so
// callers can build sibling subtrees — cache-hit clones — with the same
// lifecycle.
func (d *StreamDecoder) Arena() *xmldom.Arena { return d.arena }

// NextEntryStart reads up to the start tag of the next body entry and
// returns the started element — attributes present, children not yet
// parsed. It returns (nil, nil) when the Body end tag is reached. The
// caller inspects the element (is it a packed request?) and then finishes
// it with CompleteEntry or NextChild.
func (d *StreamDecoder) NextEntryStart() (*xmldom.Element, error) {
	if d.state != streamInBody {
		return nil, fmt.Errorf("soap: NextEntryStart in wrong state")
	}
	for {
		pos := d.tk.InputOffset()
		tok, err := d.tk.Next()
		if err != nil {
			return nil, d.wrapTokenErr(err)
		}
		switch tok.Kind {
		case xmltext.KindStartElement:
			el := xmldom.StartElementNode(d.arena, &tok, d.body)
			if d.src != nil {
				d.entryStart = pos
				d.entryTag = d.src[pos:d.tk.InputOffset()]
			}
			d.state = streamInEntry
			return el, nil
		case xmltext.KindEndElement:
			d.state = streamBodyDone
			return nil, nil
		case xmltext.KindText:
			xmldom.AppendText(d.arena, d.body, d.tk.TokenBytes())
		case xmltext.KindComment:
			d.body.AddChild(&xmldom.Comment{Data: tok.Text})
		}
	}
}

// CompleteEntry parses the rest of the entry subtree started by
// NextEntryStart (a no-op beyond the pending end token for a self-closing
// entry).
func (d *StreamDecoder) CompleteEntry(el *xmldom.Element) error {
	if d.state != streamInEntry {
		return fmt.Errorf("soap: CompleteEntry in wrong state")
	}
	if err := xmldom.CompleteSubtree(d.tk, d.arena, el); err != nil {
		return d.wrapTokenErr(err)
	}
	d.pushEntrySpan()
	d.state = streamInBody
	return nil
}

// NextChild parses and returns the next child element of the entry started
// by NextEntryStart, subtree complete. Text and comments between children
// are attached to the entry as they are encountered. It returns (nil, nil)
// when the entry's end tag is reached, after which the next NextEntryStart
// may be issued. This is the packed-dispatch workhorse: each
// Parallel_Method child is delivered as its subtree closes.
func (d *StreamDecoder) NextChild(entry *xmldom.Element) (*xmldom.Element, error) {
	if d.state != streamInEntry {
		return nil, fmt.Errorf("soap: NextChild in wrong state")
	}
	for {
		tok, err := d.tk.Next()
		if err != nil {
			return nil, d.wrapTokenErr(err)
		}
		switch tok.Kind {
		case xmltext.KindStartElement:
			child := xmldom.StartElementNode(d.arena, &tok, entry)
			if err := xmldom.CompleteSubtree(d.tk, d.arena, child); err != nil {
				return nil, d.wrapTokenErr(err)
			}
			return child, nil
		case xmltext.KindEndElement:
			d.pushEntrySpan()
			d.state = streamInBody
			return nil, nil
		case xmltext.KindText:
			xmldom.AppendText(d.arena, entry, d.tk.TokenBytes())
		case xmltext.KindComment:
			entry.AddChild(&xmldom.Comment{Data: tok.Text})
		}
	}
}

// pushEntrySpan records the raw span of the entry that just completed.
func (d *StreamDecoder) pushEntrySpan() {
	if d.src != nil {
		d.spans = append(d.spans, d.src[d.entryStart:d.tk.InputOffset()])
	}
}

// RawContext returns the verbatim start tags of the envelope root and the
// Body element — the two ancestors whose attributes (namespace
// declarations) govern how any body subtree's prefixes resolve. Together
// with EntryStartTag they form the context a caller must mix into a
// subtree hash so byte-identical subtrees under different declarations
// never collide. Nil outside Acquire mode or before ReadPreamble.
func (d *StreamDecoder) RawContext() (rootTag, bodyTag []byte) {
	return d.rootTag, d.bodyTag
}

// EntryStartTag returns the verbatim start tag of the entry most recently
// started by NextEntryStart — the third ancestor link in the hashing
// context for per-child subtree spans. Nil outside Acquire mode.
func (d *StreamDecoder) EntryStartTag() []byte { return d.entryTag }

// BodySpans returns the raw byte spans of the body entries completed so
// far, in document order. After the last entry (and Finish) this is the
// exact wire form of the Body's element content — the canonical body that
// header processors verify signatures over. The spans alias the request
// buffer passed to AcquireStreamDecoder.
func (d *StreamDecoder) BodySpans() [][]byte { return d.spans }

// NextChildSpan is NextChild without the DOM: the next child subtree of
// the current entry is tokenized (well-formedness still enforced) but no
// nodes are built, and its raw byte span is returned. (nil, nil) at the
// entry's end tag. The per-entry parse cache uses it to hash a child
// before deciding whether to parse it at all. Only valid in Acquire mode.
func (d *StreamDecoder) NextChildSpan(entry *xmldom.Element) ([]byte, error) {
	if d.state != streamInEntry {
		return nil, fmt.Errorf("soap: NextChildSpan in wrong state")
	}
	if d.src == nil {
		return nil, fmt.Errorf("soap: NextChildSpan without in-memory source")
	}
	for {
		pos := d.tk.InputOffset()
		tok, err := d.tk.Next()
		if err != nil {
			return nil, d.wrapTokenErr(err)
		}
		switch tok.Kind {
		case xmltext.KindStartElement:
			if err := d.skipSubtree(); err != nil {
				return nil, err
			}
			return d.src[pos:d.tk.InputOffset()], nil
		case xmltext.KindEndElement:
			d.pushEntrySpan()
			d.state = streamInBody
			return nil, nil
		case xmltext.KindText:
			xmldom.AppendText(d.arena, entry, d.tk.TokenBytes())
		case xmltext.KindComment:
			entry.AddChild(&xmldom.Comment{Data: tok.Text})
		}
	}
}

// CompleteEntrySpan is CompleteEntry without the DOM: the rest of the
// entry subtree is tokenized but not built, and the full raw span of the
// entry (start tag included) is returned. The caller either parses the
// span or substitutes a cached tree via ReplaceEntry. Only valid in
// Acquire mode.
func (d *StreamDecoder) CompleteEntrySpan(el *xmldom.Element) ([]byte, error) {
	if d.state != streamInEntry {
		return nil, fmt.Errorf("soap: CompleteEntrySpan in wrong state")
	}
	if d.src == nil {
		return nil, fmt.Errorf("soap: CompleteEntrySpan without in-memory source")
	}
	if err := d.skipSubtree(); err != nil {
		return nil, err
	}
	span := d.src[d.entryStart:d.tk.InputOffset()]
	d.spans = append(d.spans, span)
	d.state = streamInBody
	return span, nil
}

// skipSubtree consumes tokens until the subtree opened by the most recent
// start token closes. A self-closing element's synthetic end token returns
// immediately, consuming no input.
func (d *StreamDecoder) skipSubtree() error {
	depth := 1
	for depth > 0 {
		tok, err := d.tk.Next()
		if err != nil {
			return d.wrapTokenErr(err)
		}
		switch tok.Kind {
		case xmltext.KindStartElement:
			depth++
		case xmltext.KindEndElement:
			depth--
		}
	}
	return nil
}

// ReplaceEntry swaps an entry element delivered by NextEntryStart (and
// skipped via CompleteEntrySpan) for a replacement tree — a cache clone or
// a span re-parse — keeping document order and the parent chain intact.
func (d *StreamDecoder) ReplaceEntry(old, repl *xmldom.Element) {
	for i, n := range d.body.Children {
		if n == old {
			d.body.Children[i] = repl
			repl.Parent = d.body
			old.Parent = nil
			return
		}
	}
}

// Finish consumes the remainder of the document after the Body, applying
// the same envelope-shape checks Decode performs (Header after Body,
// multiple Bodies, unexpected children, trailing junk) and returns the
// assembled Envelope.
func (d *StreamDecoder) Finish() (*Envelope, error) {
	switch d.state {
	case streamBodyDone:
	case streamInBody:
		// Caller stopped between entries: drain the rest of the Body so the
		// envelope is complete and tail errors still surface.
		for {
			el, err := d.NextEntryStart()
			if err != nil {
				return nil, err
			}
			if el == nil {
				break
			}
			if err := d.CompleteEntry(el); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("soap: Finish in wrong state")
	}
	for {
		tok, err := d.tk.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, d.wrapTokenErr(err)
		}
		switch tok.Kind {
		case xmltext.KindStartElement:
			child := xmldom.StartElementNode(d.arena, &tok, d.root)
			switch {
			case child.Is(d.nsEnv, "Header"):
				return nil, fmt.Errorf("soap: Header after Body")
			case child.Is(d.nsEnv, "Body"):
				return nil, fmt.Errorf("soap: multiple Body elements")
			default:
				return nil, fmt.Errorf("soap: unexpected envelope child {%s}%s",
					child.Namespace(), child.Name.Local)
			}
		case xmltext.KindEndElement:
			// Root end; keep reading to surface trailing-junk errors,
			// exactly as a full Parse would.
		}
	}
	d.state = streamDone
	d.env.Body = append(d.env.Body, d.body.ChildElements()...)
	return d.env, nil
}

// wrapTokenErr adds the soap: prefix Decode errors carry, preserving EOF
// as a truncation error rather than a clean end.
func (d *StreamDecoder) wrapTokenErr(err error) error {
	if err == io.EOF {
		return fmt.Errorf("soap: unexpected EOF inside envelope")
	}
	return fmt.Errorf("soap: %w", err)
}

var errEmptyEnvelope = fmt.Errorf("empty document")

// AppendRawBodyEntries appends the verbatim byte spans of doc's top-level
// Body entries to dst and returns it. This is the canonical body as header
// processors see it on the streaming path (BodySpans concatenated); the
// buffered dispatch path calls it so signature verification covers the
// same bytes no matter which path a request took. The scan tokenizes the
// whole document (tail included) but builds DOM nodes only for the
// preamble.
func AppendRawBodyEntries(dst []byte, doc []byte) ([]byte, error) {
	d := AcquireStreamDecoder(doc, nil)
	defer d.Release()
	if err := d.ReadPreamble(); err != nil {
		return dst, err
	}
	for {
		el, err := d.NextEntryStart()
		if err != nil {
			return dst, err
		}
		if el == nil {
			break
		}
		if _, err := d.CompleteEntrySpan(el); err != nil {
			return dst, err
		}
	}
	if _, err := d.Finish(); err != nil {
		return dst, err
	}
	for _, s := range d.BodySpans() {
		dst = append(dst, s...)
	}
	return dst, nil
}

// DecodeArena is Decode with arena allocation: the whole tree is parsed
// into a before envelope interpretation. It is the buffered counterpart of
// StreamDecoder for paths (differential cache, canonicalization) that need
// the complete document up front, and the fast path for clients decoding
// responses they fully consume before releasing the arena.
func DecodeArena(r io.Reader, a *xmldom.Arena) (*Envelope, error) {
	root, err := xmldom.ParseInArena(r, a)
	if err != nil {
		return nil, fmt.Errorf("soap: %w", err)
	}
	return FromElement(root)
}

// DecodeArenaBytes is DecodeArena over an in-memory document, parsed on a
// pooled tokenizer — the client's response-decode hot path.
func DecodeArenaBytes(b []byte, a *xmldom.Arena) (*Envelope, error) {
	root, err := xmldom.ParseBytesInArena(b, a)
	if err != nil {
		return nil, fmt.Errorf("soap: %w", err)
	}
	return FromElement(root)
}
