package soap

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/xmldom"
)

const (
	streamEnv11 = `<SOAP-ENV:Envelope xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/">`
	streamEnv12 = `<env:Envelope xmlns:env="http://www.w3.org/2003/05/soap-envelope">`
)

// streamDecodeAll drives a StreamDecoder the way the server does — preamble,
// then every entry child by child — and returns the finished envelope.
func streamDecodeAll(t *testing.T, doc string) (*Envelope, error) {
	t.Helper()
	d := NewStreamDecoder(strings.NewReader(doc), nil)
	if err := d.ReadPreamble(); err != nil {
		return nil, err
	}
	for {
		entry, err := d.NextEntryStart()
		if err != nil {
			return nil, err
		}
		if entry == nil {
			break
		}
		for {
			child, err := d.NextChild(entry)
			if err != nil {
				return nil, err
			}
			if child == nil {
				break
			}
		}
	}
	return d.Finish()
}

// TestStreamDecoderMatchesDecode is the differential guarantee: over valid
// and malformed documents alike, the streaming decoder accepts exactly what
// Decode accepts and produces equivalent envelopes.
func TestStreamDecoderMatchesDecode(t *testing.T) {
	docs := []string{
		// Valid.
		streamEnv11 + `<SOAP-ENV:Body><m:echo xmlns:m="urn:spi:Echo"><data>hi</data></m:echo></SOAP-ENV:Body></SOAP-ENV:Envelope>`,
		streamEnv11 + `<SOAP-ENV:Body/></SOAP-ENV:Envelope>`,
		streamEnv11 + `<SOAP-ENV:Header><h:a xmlns:h="urn:h">v</h:a><h:b xmlns:h="urn:h"/></SOAP-ENV:Header><SOAP-ENV:Body><m:op xmlns:m="urn:m"/></SOAP-ENV:Body></SOAP-ENV:Envelope>`,
		streamEnv12 + `<env:Body><m:echo xmlns:m="urn:spi:Echo"/></env:Body></env:Envelope>`,
		streamEnv11 + `<SOAP-ENV:Body><spi:Parallel_Method xmlns:spi="http://spi.ict.ac.cn/pack">` +
			`<m:a xmlns:m="urn:a" spi:id="0" spi:service="A"><x>1</x></m:a>` +
			`<m:b xmlns:m="urn:b" spi:id="1" spi:service="B"/>` +
			`</spi:Parallel_Method></SOAP-ENV:Body></SOAP-ENV:Envelope>`,
		`<?xml version="1.0"?>` + "\n" + streamEnv11 + "\n  " +
			`<SOAP-ENV:Body>` + "\n    " + `<m:op xmlns:m="urn:m"><p>v</p></m:op>` + "\n  " +
			`</SOAP-ENV:Body>` + "\n" + `</SOAP-ENV:Envelope>`,
		streamEnv11 + `<SOAP-ENV:Body><!-- c --><a xmlns="urn:x">t<b/>u</a><c xmlns="urn:y"/></SOAP-ENV:Body></SOAP-ENV:Envelope>`,
		// Malformed.
		``,
		`not xml`,
		`<a/>`,
		`<Envelope xmlns="urn:not-soap"><Body/></Envelope>`,
		streamEnv11 + `<SOAP-ENV:Body>`,
		streamEnv11 + `<SOAP-ENV:Body/><SOAP-ENV:Header/></SOAP-ENV:Envelope>`,
		streamEnv11 + `<SOAP-ENV:Body/><SOAP-ENV:Body/></SOAP-ENV:Envelope>`,
		streamEnv11 + `<SOAP-ENV:Body/><junk/></SOAP-ENV:Envelope>`,
		streamEnv11 + `</SOAP-ENV:Envelope>`,
		streamEnv11 + `<SOAP-ENV:Body><m:a xmlns:m="urn:a"></m:b></SOAP-ENV:Body></SOAP-ENV:Envelope>`,
		streamEnv11 + `<SOAP-ENV:Body/></SOAP-ENV:Envelope><trailing/>`,
	}
	for _, doc := range docs {
		want, wantErr := Decode(strings.NewReader(doc))
		got, gotErr := streamDecodeAll(t, doc)
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("%s:\nDecode err: %v\nstream err: %v", doc, wantErr, gotErr)
			continue
		}
		if wantErr != nil {
			continue
		}
		if got.Version != want.Version {
			t.Errorf("%s: version %v vs %v", doc, got.Version, want.Version)
		}
		if len(got.Header) != len(want.Header) || len(got.Body) != len(want.Body) {
			t.Errorf("%s: structure header %d/%d body %d/%d", doc,
				len(got.Header), len(want.Header), len(got.Body), len(want.Body))
			continue
		}
		for i := range want.Header {
			if !xmldom.Equal(got.Header[i], want.Header[i]) {
				t.Errorf("%s: header %d differs:\n%s\nvs\n%s", doc, i, got.Header[i], want.Header[i])
			}
		}
		for i := range want.Body {
			if !xmldom.Equal(got.Body[i], want.Body[i]) {
				t.Errorf("%s: body %d differs:\n%s\nvs\n%s", doc, i, got.Body[i], want.Body[i])
			}
		}
	}
}

// TestStreamDecoderErrorParity pins the exact error messages shared with
// Decode for the envelope-shape violations.
func TestStreamDecoderErrorParity(t *testing.T) {
	for _, doc := range []string{
		streamEnv11 + `<SOAP-ENV:Body/><SOAP-ENV:Header/></SOAP-ENV:Envelope>`,
		streamEnv11 + `<SOAP-ENV:Body/><SOAP-ENV:Body/></SOAP-ENV:Envelope>`,
		streamEnv11 + `</SOAP-ENV:Envelope>`,
		`<Envelope xmlns="urn:not-soap"><Body/></Envelope>`,
		`<a xmlns="urn:x"/>`,
	} {
		_, wantErr := Decode(strings.NewReader(doc))
		_, gotErr := streamDecodeAll(t, doc)
		if wantErr == nil || gotErr == nil {
			t.Fatalf("%s: expected errors, got %v / %v", doc, wantErr, gotErr)
		}
		if wantErr.Error() != gotErr.Error() {
			t.Errorf("%s:\nDecode: %v\nstream: %v", doc, wantErr, gotErr)
		}
	}
	// VersionMismatchError must keep its concrete type so the server can
	// answer with the right fault code.
	_, err := streamDecodeAll(t, `<Envelope xmlns="urn:not-soap"><Body/></Envelope>`)
	if _, ok := err.(*VersionMismatchError); !ok {
		t.Errorf("version mismatch lost its type: %T %v", err, err)
	}
}

// TestStreamDecoderIncremental checks the property the fast path is built
// on: a packed entry's child is fully usable (namespaces resolved, params
// readable) before the rest of the document has been read.
func TestStreamDecoderIncremental(t *testing.T) {
	head := streamEnv11 + `<SOAP-ENV:Body><spi:Parallel_Method xmlns:spi="http://spi.ict.ac.cn/pack">` +
		`<m:first xmlns:m="urn:svc" spi:id="0" spi:service="Svc"><p>v0</p></m:first>`
	tail := `<m:second xmlns:m="urn:svc" spi:id="1" spi:service="Svc"/>` +
		`</spi:Parallel_Method></SOAP-ENV:Body></SOAP-ENV:Envelope>`

	// A reader that fails if anything past the first entry is requested.
	r := &boundedReader{s: head + tail, limit: len(head) + 1}
	d := NewStreamDecoder(r, nil)
	if err := d.ReadPreamble(); err != nil {
		t.Fatal(err)
	}
	entry, err := d.NextEntryStart()
	if err != nil || entry == nil {
		t.Fatalf("entry: %v %v", entry, err)
	}
	if !entry.Is("http://spi.ict.ac.cn/pack", "Parallel_Method") {
		t.Fatalf("entry is %s", entry.Name)
	}
	child, err := d.NextChild(entry)
	if err != nil || child == nil {
		t.Fatalf("child: %v %v", child, err)
	}
	if !child.Is("urn:svc", "first") {
		t.Errorf("child namespace not resolvable mid-stream: %s", child.Name)
	}
	if got := child.Child("", "p").Text(); got != "v0" {
		t.Errorf("child param = %q", got)
	}
	if r.failed {
		t.Fatal("decoder read past the first entry before being asked")
	}
	// Allow the rest and drain.
	r.limit = len(head) + len(tail)
	if c2, err := d.NextChild(entry); err != nil || c2 == nil || c2.Name.Local != "second" {
		t.Fatalf("second child: %v %v", c2, err)
	}
	if c3, err := d.NextChild(entry); err != nil || c3 != nil {
		t.Fatalf("entry close: %v %v", c3, err)
	}
	env, err := d.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Body) != 1 {
		t.Fatalf("body entries = %d", len(env.Body))
	}
}

// boundedReader serves s one byte at a time and records (then errors) any
// read past limit.
type boundedReader struct {
	s      string
	pos    int
	limit  int
	failed bool
}

func (r *boundedReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.s) {
		return 0, io.EOF
	}
	if r.pos >= r.limit {
		r.failed = true
		return 0, errReadPastEnd
	}
	p[0] = r.s[r.pos]
	r.pos++
	return 1, nil
}

var errReadPastEnd = &VersionMismatchError{Namespace: "read past limit"} // any sentinel error

// TestStreamDecoderArena runs the streaming path on a recycled arena and
// checks the drain-in-Finish path (caller abandons entries mid-stream).
func TestStreamDecoderArena(t *testing.T) {
	doc := streamEnv11 + `<SOAP-ENV:Body><m:a xmlns:m="urn:a"><x>1</x></m:a><m:b xmlns:m="urn:b"/></SOAP-ENV:Body></SOAP-ENV:Envelope>`
	a := xmldom.AcquireArena()
	defer xmldom.ReleaseArena(a)
	for i := 0; i < 3; i++ {
		d := NewStreamDecoder(strings.NewReader(doc), a)
		if err := d.ReadPreamble(); err != nil {
			t.Fatal(err)
		}
		// Don't consume any entries: Finish must drain and still validate.
		env, err := d.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if len(env.Body) != 2 {
			t.Fatalf("iteration %d: body entries = %d", i, len(env.Body))
		}
		if env.Body[0].Child("", "x").Text() != "1" {
			t.Fatalf("iteration %d: param lost", i)
		}
		a.Reset()
	}
}

// TestDecodeArenaMatchesDecode checks the buffered arena decode against the
// heap decode.
func TestDecodeArenaMatchesDecode(t *testing.T) {
	doc := streamEnv11 + `<SOAP-ENV:Header><h:t xmlns:h="urn:h">k</h:t></SOAP-ENV:Header>` +
		`<SOAP-ENV:Body><m:op xmlns:m="urn:m"><p>v</p></m:op></SOAP-ENV:Body></SOAP-ENV:Envelope>`
	want, err := Decode(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	a := xmldom.AcquireArena()
	defer xmldom.ReleaseArena(a)
	got, err := DecodeArena(strings.NewReader(doc), a)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != want.Version || len(got.Body) != len(want.Body) || len(got.Header) != len(want.Header) {
		t.Fatalf("structure mismatch")
	}
	if !xmldom.Equal(got.Body[0], want.Body[0]) || !xmldom.Equal(got.Header[0], want.Header[0]) {
		t.Error("trees differ")
	}
}

// FuzzStreamDecoder feeds arbitrary documents to the streaming decoder,
// driven exactly as the server drives it, and cross-checks acceptance and
// structure against Decode. Seeds exercise the packed fast path:
// interleaved namespace declarations, deeply nested entry payloads and
// fault entries early in the pack.
func FuzzStreamDecoder(f *testing.F) {
	pack := `<spi:Parallel_Method xmlns:spi="http://spi.ict.ac.cn/pack">`
	for _, seed := range []string{
		``,
		`<a/>`,
		streamEnv11 + `<SOAP-ENV:Body><m:echo xmlns:m="urn:spi:Echo"><data>hi</data></m:echo></SOAP-ENV:Body></SOAP-ENV:Envelope>`,
		// Interleaved namespaces: the same prefix rebound per entry, child
		// prefixes declared on ancestors, default-namespace switches.
		streamEnv11 + `<SOAP-ENV:Body>` + pack +
			`<m:a xmlns:m="urn:one" spi:id="0" spi:service="A"><m:x>1</m:x></m:a>` +
			`<m:a xmlns:m="urn:two" spi:id="1" spi:service="A"><y xmlns="urn:deep">2</y></m:a>` +
			`<b xmlns="urn:three" spi:id="2" spi:service="B"><c xmlns=""/></b>` +
			`</spi:Parallel_Method></SOAP-ENV:Body></SOAP-ENV:Envelope>`,
		// Deeply nested entry payloads.
		streamEnv11 + `<SOAP-ENV:Body>` + pack +
			`<m:deep xmlns:m="urn:d" spi:id="0" spi:service="D">` +
			strings.Repeat(`<level>`, 24) + `bottom` + strings.Repeat(`</level>`, 24) +
			`</m:deep></spi:Parallel_Method></SOAP-ENV:Body></SOAP-ENV:Envelope>`,
		// Fault entry early in the pack, real entries after it.
		streamEnv11 + `<SOAP-ENV:Body>` + pack +
			`<SOAP-ENV:Fault spi:id="0" spi:service="A"><faultcode>SOAP-ENV:Server</faultcode><faultstring>early boom</faultstring></SOAP-ENV:Fault>` +
			`<m:ok xmlns:m="urn:ok" spi:id="1" spi:service="B"><p>fine</p></m:ok>` +
			`</spi:Parallel_Method></SOAP-ENV:Body></SOAP-ENV:Envelope>`,
		// Malformed tails after a good first entry.
		streamEnv11 + `<SOAP-ENV:Body>` + pack + `<m:a xmlns:m="urn:a" spi:id="0" spi:service="A"/><m:b`,
		streamEnv11 + `<SOAP-ENV:Body/><SOAP-ENV:Header/></SOAP-ENV:Envelope>`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		want, wantErr := Decode(bytes.NewReader(data))

		d := NewStreamDecoder(bytes.NewReader(data), nil)
		var got *Envelope
		gotErr := d.ReadPreamble()
		if gotErr == nil {
		entries:
			for {
				entry, err := d.NextEntryStart()
				if err != nil {
					gotErr = err
					break
				}
				if entry == nil {
					break
				}
				for {
					child, err := d.NextChild(entry)
					if err != nil {
						gotErr = err
						break entries
					}
					if child == nil {
						break
					}
				}
			}
			if gotErr == nil {
				got, gotErr = d.Finish()
			}
		}

		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("acceptance divergence:\nDecode: %v\nstream: %v\ndoc: %q", wantErr, gotErr, data)
		}
		if wantErr != nil {
			return
		}
		if got.Version != want.Version ||
			len(got.Header) != len(want.Header) || len(got.Body) != len(want.Body) {
			t.Fatalf("structure divergence on %q", data)
		}
		for i := range want.Body {
			if !xmldom.Equal(got.Body[i], want.Body[i]) {
				t.Fatalf("body %d divergence on %q:\n%s\nvs\n%s", i, data, got.Body[i], want.Body[i])
			}
		}
	})
}

// streamDecodeAllPooled mirrors streamDecodeAll on a pooled decoder and
// returns the envelope serialized, since the envelope itself dies with the
// decoder's release.
func streamDecodeAllPooled(doc string, a *xmldom.Arena) (string, error) {
	d := AcquireStreamDecoder([]byte(doc), a)
	defer d.Release()
	if err := d.ReadPreamble(); err != nil {
		return "", err
	}
	for {
		entry, err := d.NextEntryStart()
		if err != nil {
			return "", err
		}
		if entry == nil {
			break
		}
		if err := d.CompleteEntry(entry); err != nil {
			return "", err
		}
	}
	env, err := d.Finish()
	if err != nil {
		return "", err
	}
	return env.Element().String(), nil
}

// TestStreamDecoderPoolRecycling checks pooled decoders against fresh
// Decode over distinct documents from concurrent goroutines — with -race
// this doubles as the pool's data-race check, and the serialized
// comparison catches any state leaking between recycled decoders.
func TestStreamDecoderPoolRecycling(t *testing.T) {
	const workers, rounds = 8, 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				doc := fmt.Sprintf(`<?xml version="1.0"?>`+streamEnv11+
					`<SOAP-ENV:Header><h:t xmlns:h="urn:h">w%dr%d</h:t></SOAP-ENV:Header>`+
					`<SOAP-ENV:Body><m:op%d xmlns:m="urn:w%d"><v>%d &amp; %d</v></m:op%d></SOAP-ENV:Body></SOAP-ENV:Envelope>`,
					w, r, r, w, w, r, r)
				arena := xmldom.AcquireArena()
				got, err := streamDecodeAllPooled(doc, arena)
				if err != nil {
					xmldom.ReleaseArena(arena)
					t.Errorf("worker %d round %d: pooled: %v", w, r, err)
					return
				}
				xmldom.ReleaseArena(arena)
				env, err := Decode(strings.NewReader(doc))
				if err != nil {
					t.Errorf("worker %d round %d: Decode: %v", w, r, err)
					return
				}
				if want := env.Element().String(); got != want {
					t.Errorf("worker %d round %d: pooled %q, fresh %q", w, r, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestStreamDecoderPoolErrorRelease pins that Release is safe in every
// decoder state: never started, failed preamble, failed mid-body, done.
func TestStreamDecoderPoolErrorRelease(t *testing.T) {
	for _, doc := range []string{
		``,
		`<Envelope xmlns="urn:not-soap"><Body/></Envelope>`,
		streamEnv11 + `<SOAP-ENV:Body><a></b>`,
		streamEnv11 + `<SOAP-ENV:Body/></SOAP-ENV:Envelope>`,
	} {
		d := AcquireStreamDecoder([]byte(doc), nil)
		if err := d.ReadPreamble(); err == nil {
			for {
				entry, err := d.NextEntryStart()
				if err != nil || entry == nil {
					break
				}
				if err := d.CompleteEntry(entry); err != nil {
					break
				}
			}
			_, _ = d.Finish()
		}
		d.Release()
	}
	// The pool must hand back working decoders afterwards.
	doc := streamEnv11 + `<SOAP-ENV:Body><m:ok xmlns:m="urn:m"/></SOAP-ENV:Body></SOAP-ENV:Envelope>`
	got, err := streamDecodeAllPooled(doc, nil)
	if err != nil || !strings.Contains(got, "m:ok") {
		t.Fatalf("after error releases: %q, %v", got, err)
	}
}
