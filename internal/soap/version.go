package soap

// Version selects the SOAP envelope version. The paper's stack is SOAP
// 1.1 (the only version its toolkits spoke), but SOAP 1.2 became a W3C
// Recommendation in 2003 and a production-quality endpoint of the era
// accepted both; this implementation does too, replying in the version of
// the request.
type Version int

const (
	// V11 is SOAP 1.1 (the default and the paper's wire format).
	V11 Version = iota
	// V12 is SOAP 1.2.
	V12
)

// NSEnvelope12 is the SOAP 1.2 envelope namespace.
const NSEnvelope12 = "http://www.w3.org/2003/05/soap-envelope"

// Namespace returns the version's envelope namespace URI.
func (v Version) Namespace() string {
	if v == V12 {
		return NSEnvelope12
	}
	return NSEnvelope
}

// ContentType returns the HTTP media type for the version.
func (v Version) ContentType() string {
	if v == V12 {
		return "application/soap+xml; charset=utf-8"
	}
	return "text/xml; charset=utf-8"
}

// String names the version for logs.
func (v Version) String() string {
	if v == V12 {
		return "SOAP 1.2"
	}
	return "SOAP 1.1"
}

// faultCode12 maps a SOAP 1.1 fault code local part onto the SOAP 1.2
// equivalent.
func faultCode12(code string) string {
	switch code {
	case FaultClient:
		return "Sender"
	case FaultServer:
		return "Receiver"
	default: // VersionMismatch and MustUnderstand keep their names.
		return code
	}
}

// faultCode11 is the inverse mapping.
func faultCode11(code string) string {
	switch code {
	case "Sender":
		return FaultClient
	case "Receiver":
		return FaultServer
	default:
		return code
	}
}
