package soap

import (
	"strings"
	"testing"

	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

func TestVersionProperties(t *testing.T) {
	if V11.Namespace() != NSEnvelope || V12.Namespace() != NSEnvelope12 {
		t.Error("namespaces wrong")
	}
	if !strings.HasPrefix(V11.ContentType(), "text/xml") {
		t.Errorf("v11 content type = %q", V11.ContentType())
	}
	if !strings.HasPrefix(V12.ContentType(), "application/soap+xml") {
		t.Errorf("v12 content type = %q", V12.ContentType())
	}
	if V11.String() == V12.String() {
		t.Error("version names identical")
	}
}

func TestV12EnvelopeRoundTrip(t *testing.T) {
	env := New()
	env.Version = V12
	op := xmldom.NewElement(xmltext.Name{Local: "Op"})
	op.DeclareNamespace("", "urn:x")
	op.AddElement(xmltext.Name{Local: "p"}).SetText("v")
	env.AddBody(op)

	var b strings.Builder
	if err := env.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), NSEnvelope12) {
		t.Fatalf("encoded envelope not 1.2:\n%s", b.String())
	}
	got, err := Decode(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != V12 {
		t.Errorf("decoded version = %v", got.Version)
	}
	if len(got.Body) != 1 || got.Body[0].Child("urn:x", "p").Text() != "v" {
		t.Errorf("body round trip = %v", got.Body)
	}
}

func TestV12FaultRoundTrip(t *testing.T) {
	f := ClientFault("bad thing")
	f.Actor = "urn:node"
	det := xmldom.NewElement(xmltext.Name{Local: "detail"})
	det.AddElement(xmltext.Name{Local: "why"}).SetText("because")
	f.Detail = det

	env := f.EnvelopeFor(V12)
	var b strings.Builder
	if err := env.Encode(&b); err != nil {
		t.Fatal(err)
	}
	doc := b.String()
	for _, want := range []string{"env:Code", "env:Value", "env:Sender", "env:Reason", "env:Text", "env:Node"} {
		if !strings.Contains(doc, want) {
			t.Errorf("1.2 fault missing %s:\n%s", want, doc)
		}
	}

	got, err := Decode(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	pf := got.Fault()
	if pf == nil {
		t.Fatal("fault not recognized")
	}
	// Codes normalize back to 1.1 names.
	if pf.Code != FaultClient {
		t.Errorf("code = %q, want Client", pf.Code)
	}
	if pf.String != "bad thing" || pf.Actor != "urn:node" {
		t.Errorf("fault = %+v", pf)
	}
	if pf.Detail == nil || pf.Detail.Child("", "why").Text() != "because" {
		t.Errorf("detail = %v", pf.Detail)
	}
}

func TestV12ServerFaultCode(t *testing.T) {
	f := ServerFault("boom")
	doc := f.EnvelopeFor(V12).Element().String()
	if !strings.Contains(doc, "env:Receiver") {
		t.Errorf("Server should map to Receiver:\n%s", doc)
	}
}

func TestFaultCodeMappingInverse(t *testing.T) {
	for _, code := range []string{FaultClient, FaultServer, FaultMustUnderstand, FaultVersionMismatch} {
		if got := faultCode11(faultCode12(code)); got != code {
			t.Errorf("mapping not inverse for %q: got %q", code, got)
		}
	}
}

func TestVersionMismatchError(t *testing.T) {
	_, err := Decode(strings.NewReader(`<e:Envelope xmlns:e="urn:soap:bogus"><e:Body/></e:Envelope>`))
	if err == nil {
		t.Fatal("bogus envelope version accepted")
	}
	vm, ok := err.(*VersionMismatchError)
	if !ok {
		t.Fatalf("err = %T, want *VersionMismatchError", err)
	}
	if vm.Namespace != "urn:soap:bogus" {
		t.Errorf("namespace = %q", vm.Namespace)
	}
}

func TestV12MustUnderstand(t *testing.T) {
	doc := `<env:Envelope xmlns:env="http://www.w3.org/2003/05/soap-envelope">
	  <env:Header><T xmlns="urn:t" env:mustUnderstand="true"/></env:Header>
	  <env:Body><Op xmlns="urn:x"/></env:Body>
	</env:Envelope>`
	env, err := Decode(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(env.MustUnderstandHeaders()) != 1 {
		t.Error("1.2 mustUnderstand header not detected")
	}
}
