package soapenc

import (
	"strings"
	"testing"
	"time"

	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// Edge cases exercising the decoder's leniency and strictness boundaries,
// beyond the round-trip property tests.

func TestDecodeLenientTypes(t *testing.T) {
	// Aliased/legacy xsd type names the era's toolkits emitted.
	cases := []struct {
		typ, text string
		want      Value
	}{
		{"anyURI", "http://x", "http://x"},
		{"token", "tok", "tok"},
		{"normalizedString", "n s", "n s"},
		{"short", "12", int64(12)},
		{"byte", "-7", int64(-7)},
		{"integer", "999999999999", int64(999999999999)},
		{"unsignedInt", "4000000000", int64(4000000000)},
		{"unsignedShort", "65535", int64(65535)},
		{"float", "1.5", 1.5},
		{"decimal", "2.25", 2.25},
		{"boolean", "1", true},
		{"boolean", "0", false},
	}
	for _, c := range cases {
		doc := `<p xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"` +
			` xmlns:xsd="http://www.w3.org/2001/XMLSchema" xsi:type="xsd:` + c.typ + `">` + c.text + `</p>`
		el, err := xmldom.ParseString(doc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(el)
		if err != nil {
			t.Errorf("xsd:%s %q: %v", c.typ, c.text, err)
			continue
		}
		if !Equal(got, c.want) {
			t.Errorf("xsd:%s %q = %#v, want %#v", c.typ, c.text, got, c.want)
		}
	}
}

func TestDecodeUnknownTypeAnnotationFallsBack(t *testing.T) {
	// An xsi:type in a foreign namespace decodes structurally, like the
	// lenient toolkits did.
	doc := `<p xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"` +
		` xmlns:v="urn:vendor" xsi:type="v:CustomThing"><a>1</a></p>`
	el, err := xmldom.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(el)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := got.(*Struct)
	if !ok || s.GetString("a") != "1" {
		t.Errorf("decoded = %#v", got)
	}

	// Same annotation with text content decodes as string.
	doc2 := `<p xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"` +
		` xmlns:v="urn:vendor" xsi:type="v:CustomThing">plain</p>`
	el2, _ := xmldom.ParseString(doc2)
	got2, err := Decode(el2)
	if err != nil || got2 != "plain" {
		t.Errorf("decoded = %#v, %v", got2, err)
	}
}

func TestDecodeUnresolvablePrefixFallsBack(t *testing.T) {
	// xsi:type with an undeclared prefix cannot be resolved; the decoder
	// falls back to structural interpretation rather than failing.
	doc := `<p xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xsi:type="ghost:Thing">text</p>`
	el, err := xmldom.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(el)
	if err != nil || got != "text" {
		t.Errorf("decoded = %#v, %v", got, err)
	}
}

func TestDecodeXsiNilVariants(t *testing.T) {
	for _, variant := range []string{`xsi:nil="true"`, `xsi:nil="1"`} {
		doc := `<p xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" ` + variant + `>ignored</p>`
		el, _ := xmldom.ParseString(doc)
		got, err := Decode(el)
		if err != nil || got != nil {
			t.Errorf("%s decoded = %#v, %v", variant, got, err)
		}
	}
	// nil="false" does not nullify.
	doc := `<p xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xsi:nil="false">kept</p>`
	el, _ := xmldom.ParseString(doc)
	got, err := Decode(el)
	if err != nil || got != "kept" {
		t.Errorf("nil=false decoded = %#v, %v", got, err)
	}
}

func TestEncodeNilStructPointer(t *testing.T) {
	parent := xmldom.NewElement(xmltext.Name{Local: "P"})
	el, err := Encode(parent, "s", (*Struct)(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(el.String(), `nil="true"`) {
		t.Errorf("nil struct encoded as %s", el)
	}
}

func TestDateTimeTimezonePreserved(t *testing.T) {
	// Encoding normalizes to UTC; the instant must survive exactly.
	loc := time.FixedZone("UTC+8", 8*3600)
	ts := time.Date(2006, 9, 26, 15, 4, 5, 0, loc)
	env := encodeInTestEnvelope(t, ts)
	got, err := Decode(env)
	if err != nil {
		t.Fatal(err)
	}
	gt, ok := got.(time.Time)
	if !ok || !gt.Equal(ts) {
		t.Errorf("time round trip = %v, want instant %v", got, ts)
	}
}

// encodeInTestEnvelope is a tiny local variant of the helper in the main
// test file, kept separate to stay self-contained.
func encodeInTestEnvelope(t *testing.T, v Value) *xmldom.Element {
	t.Helper()
	parent := xmldom.NewElement(xmltext.Name{Local: "P"})
	parent.DeclareNamespace("xsi", "http://www.w3.org/2001/XMLSchema-instance")
	parent.DeclareNamespace("xsd", "http://www.w3.org/2001/XMLSchema")
	parent.DeclareNamespace("SOAP-ENC", "http://schemas.xmlsoap.org/soap/encoding/")
	el, err := Encode(parent, "v", v)
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := xmldom.ParseString(parent.String())
	if err != nil {
		t.Fatal(err)
	}
	_ = el
	return reparsed.Child("", "v")
}
