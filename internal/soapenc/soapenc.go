// Package soapenc implements SOAP 1.1 section-5 style typed parameter
// encoding: the conversion between Go values and xsi:type-annotated XML
// elements.
//
// The value model is deliberately small and closed — it is the set of types
// an RPC parameter can take on the wire:
//
//	nil        -> xsi:nil="true"
//	string     -> xsd:string
//	bool       -> xsd:boolean
//	int64      -> xsd:int / xsd:long (narrowest that fits)
//	float64    -> xsd:double
//	[]byte     -> xsd:base64Binary
//	time.Time  -> xsd:dateTime
//	Array      -> SOAP-ENC:Array of items
//	*Struct    -> untyped element with named child fields
//
// Decoding dispatches on xsi:type; elements without one fall back to
// structure (child elements present -> *Struct, otherwise string), which is
// how the loosely-typed toolkits of the era behaved.
package soapenc

import (
	"encoding/base64"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/soap"
	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// Value is one SOAP-encodable value. See the package comment for the closed
// set of permitted dynamic types.
type Value any

// Array is an ordered sequence of values, encoded as a SOAP-ENC:Array.
type Array []Value

// Struct is an ordered set of named fields, encoded as child elements.
type Struct struct {
	Fields []Field
}

// Field is one named member of a Struct (and also one named RPC parameter).
type Field struct {
	Name  string
	Value Value
}

// NewStruct builds a Struct from alternating name/value pairs, a convenience
// for literals in services and tests.
func NewStruct(fields ...Field) *Struct {
	return &Struct{Fields: fields}
}

// F is shorthand for constructing a Field.
func F(name string, v Value) Field { return Field{Name: name, Value: v} }

// Get returns the value of the first field with the given name.
func (s *Struct) Get(name string) (Value, bool) {
	for _, f := range s.Fields {
		if f.Name == name {
			return f.Value, true
		}
	}
	return nil, false
}

// GetString returns the named field as a string, or "" if absent/mistyped.
func (s *Struct) GetString(name string) string {
	v, _ := s.Get(name)
	str, _ := v.(string)
	return str
}

// GetInt returns the named field as an int64, or 0 if absent/mistyped.
func (s *Struct) GetInt(name string) int64 {
	v, _ := s.Get(name)
	n, _ := v.(int64)
	return n
}

// GetFloat returns the named field as a float64, or 0 if absent/mistyped.
func (s *Struct) GetFloat(name string) float64 {
	v, _ := s.Get(name)
	f, _ := v.(float64)
	return f
}

// GetBool returns the named field as a bool, or false if absent/mistyped.
func (s *Struct) GetBool(name string) bool {
	v, _ := s.Get(name)
	b, _ := v.(bool)
	return b
}

// xsiType returns the xsd type name (without prefix) for a value, or ""
// for values encoded structurally.
func xsiType(v Value) string {
	switch v.(type) {
	case string:
		return "string"
	case bool:
		return "boolean"
	case float64:
		return "double"
	case []byte:
		return "base64Binary"
	case time.Time:
		return "dateTime"
	}
	if n, ok := v.(int64); ok {
		if n >= math.MinInt32 && n <= math.MaxInt32 {
			return "int"
		}
		return "long"
	}
	return ""
}

var (
	xsiTypeAttr = xmltext.Name{Prefix: soap.PrefixXSI, Local: "type"}
	xsiNilAttr  = xmltext.Name{Prefix: soap.PrefixXSI, Local: "nil"}
	encArrayTyp = xmltext.Name{Prefix: soap.PrefixEncoding, Local: "arrayType"}
)

// Encode appends a child element with the given name carrying v to parent.
// The standard prefixes (xsd, xsi, SOAP-ENC) must be in scope, which they
// are inside any envelope built by package soap. It returns the new element.
func Encode(parent *xmldom.Element, name string, v Value) (*xmldom.Element, error) {
	el := parent.AddElement(xmltext.Name{Local: name})
	if err := encodeInto(el, v); err != nil {
		return nil, err
	}
	return el, nil
}

func encodeInto(el *xmldom.Element, v Value) error {
	switch v := v.(type) {
	case nil:
		el.SetAttr(xsiNilAttr, "true")
	case string:
		el.SetAttr(xsiTypeAttr, soap.PrefixXSD+":string")
		el.SetText(v)
	case bool:
		el.SetAttr(xsiTypeAttr, soap.PrefixXSD+":boolean")
		el.SetText(strconv.FormatBool(v))
	case int64:
		el.SetAttr(xsiTypeAttr, soap.PrefixXSD+":"+xsiType(v))
		el.SetText(strconv.FormatInt(v, 10))
	case int:
		return encodeInto(el, int64(v))
	case int32:
		return encodeInto(el, int64(v))
	case float64:
		el.SetAttr(xsiTypeAttr, soap.PrefixXSD+":double")
		el.SetText(formatDouble(v))
	case []byte:
		el.SetAttr(xsiTypeAttr, soap.PrefixXSD+":base64Binary")
		el.SetText(base64.StdEncoding.EncodeToString(v))
	case time.Time:
		el.SetAttr(xsiTypeAttr, soap.PrefixXSD+":dateTime")
		el.SetText(v.UTC().Format(time.RFC3339Nano))
	case Array:
		el.SetAttr(xsiTypeAttr, soap.PrefixEncoding+":Array")
		el.SetAttr(encArrayTyp, fmt.Sprintf("%s:anyType[%d]", soap.PrefixXSD, len(v)))
		for _, item := range v {
			if _, err := Encode(el, "item", item); err != nil {
				return err
			}
		}
	case *Struct:
		if v == nil {
			el.SetAttr(xsiNilAttr, "true")
			return nil
		}
		for _, f := range v.Fields {
			if f.Name == "" {
				return fmt.Errorf("soapenc: struct field with empty name")
			}
			if _, err := Encode(el, f.Name, f.Value); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("soapenc: unsupported value type %T", v)
	}
	return nil
}

// formatDouble renders a float in a form xsd:double accepts, including the
// special values.
func formatDouble(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "INF"
	case math.IsInf(f, -1):
		return "-INF"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func parseDouble(s string) (float64, error) {
	switch s {
	case "NaN":
		return math.NaN(), nil
	case "INF":
		return math.Inf(1), nil
	case "-INF":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(strings.TrimSpace(s), 64)
}

// Decode converts an element back to a Value, dispatching on xsi:type.
func Decode(el *xmldom.Element) (Value, error) {
	// xsi:nil
	for _, a := range el.Attrs {
		if a.Name.Local == "nil" && resolvesTo(el, a.Name.Prefix, soap.NSXSI) {
			if a.Value == "true" || a.Value == "1" {
				return nil, nil
			}
		}
	}
	ts, ok := typeOf(el)
	if !ok {
		// No xsi:type: decide structurally.
		if hasElementChild(el) {
			return decodeStruct(el)
		}
		return el.Text(), nil
	}
	ns, local := ts.ns, ts.local
	switch {
	case ns == soap.NSXSD:
		return decodeXSD(el, local)
	case ns == soap.NSEncoding && local == "Array":
		return decodeArray(el)
	default:
		// Unknown type annotation: fall back to structural decoding, like
		// the lenient toolkits did.
		if hasElementChild(el) {
			return decodeStruct(el)
		}
		return el.Text(), nil
	}
}

// hasElementChild reports whether el has an element child, without
// materializing the ChildElements slice.
func hasElementChild(el *xmldom.Element) bool {
	for _, c := range el.Children {
		if _, ok := c.(*xmldom.Element); ok {
			return true
		}
	}
	return false
}

type typeRef struct{ ns, local string }

// typeOf resolves the element's xsi:type attribute to a (namespace, local)
// pair.
func typeOf(el *xmldom.Element) (typeRef, bool) {
	for _, a := range el.Attrs {
		if a.Name.Local != "type" || !resolvesTo(el, a.Name.Prefix, soap.NSXSI) {
			continue
		}
		qn := xmltext.ParseName(strings.TrimSpace(a.Value))
		uri, ok := el.ResolvePrefix(qn.Prefix)
		if !ok {
			return typeRef{}, false
		}
		return typeRef{ns: uri, local: qn.Local}, true
	}
	return typeRef{}, false
}

func resolvesTo(el *xmldom.Element, prefix, wantNS string) bool {
	uri, ok := el.ResolvePrefix(prefix)
	return ok && uri == wantNS
}

func decodeXSD(el *xmldom.Element, local string) (Value, error) {
	text := el.Text()
	switch local {
	case "string", "anyURI", "QName", "normalizedString", "token":
		return text, nil
	case "boolean":
		switch strings.TrimSpace(text) {
		case "true", "1":
			return true, nil
		case "false", "0":
			return false, nil
		}
		return nil, fmt.Errorf("soapenc: bad xsd:boolean %q", text)
	case "int", "long", "short", "byte", "integer", "unsignedInt", "unsignedShort":
		n, err := strconv.ParseInt(strings.TrimSpace(text), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("soapenc: bad xsd:%s %q", local, text)
		}
		return n, nil
	case "double", "float", "decimal":
		f, err := parseDouble(strings.TrimSpace(text))
		if err != nil {
			return nil, fmt.Errorf("soapenc: bad xsd:%s %q", local, text)
		}
		return f, nil
	case "base64Binary":
		b, err := base64.StdEncoding.DecodeString(strings.TrimSpace(text))
		if err != nil {
			return nil, fmt.Errorf("soapenc: bad xsd:base64Binary: %v", err)
		}
		return b, nil
	case "dateTime":
		ts, err := time.Parse(time.RFC3339Nano, strings.TrimSpace(text))
		if err != nil {
			return nil, fmt.Errorf("soapenc: bad xsd:dateTime %q", text)
		}
		return ts, nil
	default:
		return nil, fmt.Errorf("soapenc: unsupported xsd type %q", local)
	}
}

func decodeArray(el *xmldom.Element) (Value, error) {
	items := el.ChildElements()
	arr := make(Array, 0, len(items))
	for _, item := range items {
		v, err := Decode(item)
		if err != nil {
			return nil, err
		}
		arr = append(arr, v)
	}
	return arr, nil
}

func decodeStruct(el *xmldom.Element) (Value, error) {
	s := &Struct{}
	for _, c := range el.ChildElements() {
		v, err := Decode(c)
		if err != nil {
			return nil, err
		}
		s.Fields = append(s.Fields, Field{Name: c.Name.Local, Value: v})
	}
	return s, nil
}

// EncodeParams appends each named parameter as a child of parent, in order.
func EncodeParams(parent *xmldom.Element, params []Field) error {
	for _, p := range params {
		if p.Name == "" {
			return fmt.Errorf("soapenc: parameter with empty name")
		}
		if _, err := Encode(parent, p.Name, p.Value); err != nil {
			return err
		}
	}
	return nil
}

// DecodeParams decodes every child element of el as a named parameter.
// It walks el.Children directly rather than materializing a ChildElements
// slice — this runs once per entry on both hot decode paths.
func DecodeParams(el *xmldom.Element) ([]Field, error) {
	n := 0
	for _, c := range el.Children {
		if _, ok := c.(*xmldom.Element); ok {
			n++
		}
	}
	params := make([]Field, 0, n)
	for _, c := range el.Children {
		ce, ok := c.(*xmldom.Element)
		if !ok {
			continue
		}
		v, err := Decode(ce)
		if err != nil {
			return nil, err
		}
		params = append(params, Field{Name: ce.Name.Local, Value: v})
	}
	return params, nil
}

// Equal reports deep semantic equality of two values. Times compare with
// time.Time.Equal; NaNs compare equal to each other (so round-trip
// properties hold).
func Equal(a, b Value) bool {
	switch av := a.(type) {
	case nil:
		return b == nil
	case string:
		bv, ok := b.(string)
		return ok && av == bv
	case bool:
		bv, ok := b.(bool)
		return ok && av == bv
	case int64:
		bv, ok := b.(int64)
		return ok && av == bv
	case float64:
		bv, ok := b.(float64)
		if !ok {
			return false
		}
		if math.IsNaN(av) && math.IsNaN(bv) {
			return true
		}
		return av == bv
	case []byte:
		bv, ok := b.([]byte)
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
		return true
	case time.Time:
		bv, ok := b.(time.Time)
		return ok && av.Equal(bv)
	case Array:
		bv, ok := b.(Array)
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if !Equal(av[i], bv[i]) {
				return false
			}
		}
		return true
	case *Struct:
		bv, ok := b.(*Struct)
		if !ok || len(av.Fields) != len(bv.Fields) {
			return false
		}
		for i := range av.Fields {
			if av.Fields[i].Name != bv.Fields[i].Name || !Equal(av.Fields[i].Value, bv.Fields[i].Value) {
				return false
			}
		}
		return true
	}
	return false
}
