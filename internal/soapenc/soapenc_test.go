package soapenc

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/soap"
	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// encodeInEnvelope encodes v under a proper envelope so the standard
// prefixes resolve, then re-parses the document and returns the element
// carrying v.
func encodeInEnvelope(t *testing.T, v Value) *xmldom.Element {
	t.Helper()
	env := soap.New()
	op := xmldom.NewElement(xmltext.Name{Local: "Op"})
	env.AddBody(op)
	if _, err := Encode(op, "param", v); err != nil {
		t.Fatalf("Encode(%v): %v", v, err)
	}
	var b strings.Builder
	if err := env.Encode(&b); err != nil {
		t.Fatal(err)
	}
	env2, err := soap.Decode(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("decode envelope: %v (doc %s)", err, b.String())
	}
	return env2.Body[0].Child("", "param")
}

func roundTrip(t *testing.T, v Value) Value {
	t.Helper()
	el := encodeInEnvelope(t, v)
	got, err := Decode(el)
	if err != nil {
		t.Fatalf("Decode(%v): %v", v, err)
	}
	return got
}

func TestScalarRoundTrips(t *testing.T) {
	cases := []Value{
		"hello world",
		"",
		"text with <markup> & \"entities\" and 中文",
		true,
		false,
		int64(0),
		int64(42),
		int64(-1),
		int64(math.MaxInt32),
		int64(math.MaxInt32) + 1,
		int64(math.MinInt64),
		3.14159,
		0.0,
		-2.5e300,
		math.Inf(1),
		math.Inf(-1),
		[]byte("binary\x00data\xff"),
		[]byte{},
		time.Date(2006, 7, 5, 12, 30, 45, 123456789, time.UTC),
		nil,
	}
	for _, v := range cases {
		got := roundTrip(t, v)
		if !Equal(v, got) {
			t.Errorf("round trip %#v -> %#v", v, got)
		}
	}
}

func TestNaNRoundTrip(t *testing.T) {
	got := roundTrip(t, math.NaN())
	f, ok := got.(float64)
	if !ok || !math.IsNaN(f) {
		t.Errorf("NaN round trip = %#v", got)
	}
}

func TestIntTypeSelection(t *testing.T) {
	el := encodeInEnvelope(t, int64(7))
	if ty := el.AttrValue(xmltext.Name{Prefix: "xsi", Local: "type"}); ty != "xsd:int" {
		t.Errorf("small int type = %q, want xsd:int", ty)
	}
	el = encodeInEnvelope(t, int64(math.MaxInt32)+1)
	if ty := el.AttrValue(xmltext.Name{Prefix: "xsi", Local: "type"}); ty != "xsd:long" {
		t.Errorf("large int type = %q, want xsd:long", ty)
	}
}

func TestGoIntConvenience(t *testing.T) {
	got := roundTrip(t, int(5))
	if !Equal(int64(5), got) {
		t.Errorf("int encoded round trip = %#v", got)
	}
	got = roundTrip(t, int32(-9))
	if !Equal(int64(-9), got) {
		t.Errorf("int32 encoded round trip = %#v", got)
	}
}

func TestArrayRoundTrip(t *testing.T) {
	arr := Array{"a", int64(1), true, Array{"nested"}, nil}
	got := roundTrip(t, arr)
	if !Equal(arr, got) {
		t.Errorf("array round trip = %#v", got)
	}
}

func TestEmptyArrayRoundTrip(t *testing.T) {
	got := roundTrip(t, Array{})
	arr, ok := got.(Array)
	if !ok || len(arr) != 0 {
		t.Errorf("empty array round trip = %#v", got)
	}
}

func TestStructRoundTrip(t *testing.T) {
	s := NewStruct(
		F("name", "airline-1"),
		F("price", 199.99),
		F("seats", int64(3)),
		F("tags", Array{"cheap", "fast"}),
		F("inner", NewStruct(F("k", "v"))),
	)
	got := roundTrip(t, s)
	if !Equal(s, got) {
		t.Errorf("struct round trip = %#v", got)
	}
}

func TestStructAccessors(t *testing.T) {
	s := NewStruct(F("s", "x"), F("i", int64(3)), F("f", 1.5), F("b", true))
	if s.GetString("s") != "x" || s.GetInt("i") != 3 || s.GetFloat("f") != 1.5 || !s.GetBool("b") {
		t.Errorf("accessors wrong: %#v", s)
	}
	if s.GetString("missing") != "" || s.GetInt("s") != 0 {
		t.Error("missing/mistyped accessors should zero")
	}
	if _, ok := s.Get("missing"); ok {
		t.Error("Get(missing) ok")
	}
}

func TestDecodeUntypedElement(t *testing.T) {
	el, err := xmldom.ParseString(`<p>plain text</p>`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Decode(el)
	if err != nil {
		t.Fatal(err)
	}
	if v != "plain text" {
		t.Errorf("untyped decode = %#v", v)
	}

	el2, err := xmldom.ParseString(`<p><a>1</a><b>2</b></p>`)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := Decode(el2)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := v2.(*Struct)
	if !ok || s.GetString("a") != "1" || s.GetString("b") != "2" {
		t.Errorf("untyped struct decode = %#v", v2)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		`<p xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xmlns:xsd="http://www.w3.org/2001/XMLSchema" xsi:type="xsd:int">notanint</p>`,
		`<p xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xmlns:xsd="http://www.w3.org/2001/XMLSchema" xsi:type="xsd:boolean">maybe</p>`,
		`<p xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xmlns:xsd="http://www.w3.org/2001/XMLSchema" xsi:type="xsd:double">wide</p>`,
		`<p xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xmlns:xsd="http://www.w3.org/2001/XMLSchema" xsi:type="xsd:base64Binary">!!!</p>`,
		`<p xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xmlns:xsd="http://www.w3.org/2001/XMLSchema" xsi:type="xsd:dateTime">yesterday</p>`,
		`<p xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xmlns:xsd="http://www.w3.org/2001/XMLSchema" xsi:type="xsd:fancyUnknown">x</p>`,
	}
	for _, src := range cases {
		el, err := xmldom.ParseString(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Decode(el); err == nil {
			t.Errorf("Decode(%s) succeeded, want error", src)
		}
	}
}

func TestEncodeRejectsUnsupported(t *testing.T) {
	op := xmldom.NewElement(xmltext.Name{Local: "Op"})
	if _, err := Encode(op, "p", struct{ X int }{1}); err == nil {
		t.Error("arbitrary struct type accepted")
	}
	if _, err := Encode(op, "p", map[string]int{}); err == nil {
		t.Error("map accepted")
	}
	if err := EncodeParams(op, []Field{{Name: "", Value: "x"}}); err == nil {
		t.Error("empty param name accepted")
	}
}

func TestParamsRoundTrip(t *testing.T) {
	params := []Field{
		F("city", "Beijing"),
		F("days", int64(3)),
		F("detail", true),
	}
	env := soap.New()
	op := xmldom.NewElement(xmltext.Name{Local: "GetWeather"})
	op.DeclareNamespace("", "urn:weather")
	env.AddBody(op)
	if err := EncodeParams(op, params); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := env.Encode(&b); err != nil {
		t.Fatal(err)
	}
	env2, err := soap.Decode(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeParams(env2.Body[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(params) {
		t.Fatalf("got %d params", len(got))
	}
	for i := range params {
		if got[i].Name != params[i].Name || !Equal(got[i].Value, params[i].Value) {
			t.Errorf("param %d = %#v, want %#v", i, got[i], params[i])
		}
	}
}

// randomValue generates a random encodable value. Strings avoid characters
// XML cannot carry; structs always have at least one field (an empty struct
// is indistinguishable from an empty string on the wire, which is a
// documented property of loosely-typed SOAP encoding).
func randomValue(r *rand.Rand, depth int) Value {
	kinds := 7
	if depth > 0 {
		kinds = 9
	}
	switch r.Intn(kinds) {
	case 0:
		return randString(r)
	case 1:
		return r.Intn(2) == 0
	case 2:
		return int64(r.Uint64())
	case 3:
		return r.NormFloat64() * 1e6
	case 4:
		b := make([]byte, r.Intn(16))
		r.Read(b)
		return b
	case 5:
		return time.Unix(r.Int63n(4e9), int64(r.Intn(1e9))).UTC()
	case 6:
		return nil
	case 7:
		n := r.Intn(4)
		arr := make(Array, n)
		for i := range arr {
			arr[i] = randomValue(r, depth-1)
		}
		return arr
	default:
		n := 1 + r.Intn(3)
		s := &Struct{}
		for i := 0; i < n; i++ {
			s.Fields = append(s.Fields, Field{
				Name:  string(rune('a' + i)),
				Value: randomValue(r, depth-1),
			})
		}
		return s
	}
}

func randString(r *rand.Rand) string {
	letters := []rune("abc <>&\"'\t\n中文xyz")
	n := r.Intn(12)
	out := make([]rune, n)
	for i := range out {
		out[i] = letters[r.Intn(len(letters))]
	}
	return string(out)
}

// Property: every generated value survives encode -> serialize -> parse ->
// decode.
func TestQuickValueRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 3)

		env := soap.New()
		op := xmldom.NewElement(xmltext.Name{Local: "Op"})
		env.AddBody(op)
		if _, err := Encode(op, "p", v); err != nil {
			t.Logf("encode %#v: %v", v, err)
			return false
		}
		var b strings.Builder
		if err := env.Encode(&b); err != nil {
			return false
		}
		env2, err := soap.Decode(strings.NewReader(b.String()))
		if err != nil {
			t.Logf("decode doc: %v", err)
			return false
		}
		got, err := Decode(env2.Body[0].Child("", "p"))
		if err != nil {
			t.Logf("decode value: %v", err)
			return false
		}
		if !Equal(v, got) {
			t.Logf("mismatch: %#v -> %#v (doc %s)", v, got, b.String())
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestEqualCrossTypes(t *testing.T) {
	if Equal("1", int64(1)) || Equal(true, "true") || Equal(nil, "") {
		t.Error("cross-type values compared equal")
	}
	if Equal(Array{"a"}, Array{"b"}) || Equal(NewStruct(F("a", "x")), NewStruct(F("b", "x"))) {
		t.Error("different composites compared equal")
	}
}
