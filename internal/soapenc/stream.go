package soapenc

import (
	"encoding/base64"
	"fmt"
	"math"
	"strconv"
	"time"

	"repro/internal/xmltext"
)

// Streaming counterparts of Encode/EncodeParams: they write the same bytes
// the DOM path serializes to, directly into an xmltext.Emitter, so typed
// parameters cost zero allocations on the encode hot path. Differential
// tests pin byte parity against the DOM path for every value type.

var nameItem = xmltext.Name{Local: "item"}

// EncodeTo emits `<name>` carrying v into em, byte-identical to Encode
// followed by serialization. The standard prefixes (xsd, xsi, SOAP-ENC)
// must be in scope at the insertion point, as inside any SOAP envelope.
func EncodeTo(em *xmltext.Emitter, name string, v Value) error {
	return encodeTo(em, xmltext.Name{Local: name}, v)
}

// EncodeParamsTo emits each named parameter in order, the streaming form
// of EncodeParams.
func EncodeParamsTo(em *xmltext.Emitter, params []Field) error {
	for _, p := range params {
		if p.Name == "" {
			return fmt.Errorf("soapenc: parameter with empty name")
		}
		if err := encodeTo(em, xmltext.Name{Local: p.Name}, p.Value); err != nil {
			return err
		}
	}
	return nil
}

func encodeTo(em *xmltext.Emitter, name xmltext.Name, v Value) error {
	// Normalize the int widths first (the DOM path recurses for these).
	switch n := v.(type) {
	case int:
		v = int64(n)
	case int32:
		v = int64(n)
	}
	// Scratch for number/time formatting; stays on the stack because the
	// emitter only copies out of it (vet-escapes pins this).
	var tmp [64]byte
	em.Start(name)
	switch v := v.(type) {
	case nil:
		em.Attr(xsiNilAttr, "true")
	case string:
		em.Attr(xsiTypeAttr, "xsd:string")
		em.Text(v)
	case bool:
		em.Attr(xsiTypeAttr, "xsd:boolean")
		if v {
			em.RawString("true")
		} else {
			em.RawString("false")
		}
	case int64:
		if v >= math.MinInt32 && v <= math.MaxInt32 {
			em.Attr(xsiTypeAttr, "xsd:int")
		} else {
			em.Attr(xsiTypeAttr, "xsd:long")
		}
		em.Raw(strconv.AppendInt(tmp[:0], v, 10))
	case float64:
		em.Attr(xsiTypeAttr, "xsd:double")
		em.Raw(AppendDouble(tmp[:0], v))
	case []byte:
		em.Attr(xsiTypeAttr, "xsd:base64Binary")
		base64.StdEncoding.Encode(em.Extend(base64.StdEncoding.EncodedLen(len(v))), v)
	case time.Time:
		em.Attr(xsiTypeAttr, "xsd:dateTime")
		em.Raw(v.UTC().AppendFormat(tmp[:0], time.RFC3339Nano))
	case Array:
		em.Attr(xsiTypeAttr, "SOAP-ENC:Array")
		at := append(tmp[:0], "xsd:anyType["...)
		at = strconv.AppendInt(at, int64(len(v)), 10)
		at = append(at, ']')
		em.AttrRaw(encArrayTyp, at)
		for _, item := range v {
			if err := encodeTo(em, nameItem, item); err != nil {
				return err
			}
		}
	case *Struct:
		if v == nil {
			em.Attr(xsiNilAttr, "true")
			break
		}
		for _, f := range v.Fields {
			if f.Name == "" {
				return fmt.Errorf("soapenc: struct field with empty name")
			}
			if err := encodeTo(em, xmltext.Name{Local: f.Name}, f.Value); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("soapenc: unsupported value type %T", v)
	}
	em.End()
	return nil
}

// AppendDouble is formatDouble in append form, exported for template
// splicing (msgcache), which must render values exactly as the encoder
// does.
func AppendDouble(dst []byte, f float64) []byte {
	switch {
	case math.IsNaN(f):
		return append(dst, "NaN"...)
	case math.IsInf(f, 1):
		return append(dst, "INF"...)
	case math.IsInf(f, -1):
		return append(dst, "-INF"...)
	}
	return strconv.AppendFloat(dst, f, 'g', -1, 64)
}
