package soapenc

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// domEncodeString serializes the DOM-path encoding of (name, v).
func domEncodeString(t *testing.T, name string, v Value) (string, error) {
	t.Helper()
	parent := xmldom.NewElement(xmltext.Name{Local: "parent"})
	el, err := Encode(parent, name, v)
	if err != nil {
		return "", err
	}
	return el.String(), nil
}

func streamEncodeString(t *testing.T, name string, v Value) (string, error) {
	t.Helper()
	em := xmltext.AcquireEmitter()
	defer xmltext.ReleaseEmitter(em)
	if err := EncodeTo(em, name, v); err != nil {
		return "", err
	}
	if err := em.Err(); err != nil {
		return "", err
	}
	return string(em.Bytes()), nil
}

// TestEncodeToParity pins the streaming value serializers byte-identical
// to the DOM path for every type in the closed value model, including the
// edge values.
func TestEncodeToParity(t *testing.T) {
	ts := time.Date(2006, 1, 2, 15, 4, 5, 123456789, time.FixedZone("X", 3600))
	cases := []struct {
		desc string
		v    Value
	}{
		{"nil", nil},
		{"string", "hello"},
		{"string empty", ""},
		{"string escapes", `a<b&c>d"e` + "\r\n\t"},
		{"string invalid utf8", "x\xffy"},
		{"bool true", true},
		{"bool false", false},
		{"int small", int64(42)},
		{"int negative", int64(-7)},
		{"int32 boundary", int64(math.MaxInt32)},
		{"long", int64(math.MaxInt32) + 1},
		{"long min", int64(math.MinInt64)},
		{"plain int", int(5)},
		{"int32 typed", int32(-9)},
		{"double", 3.14159},
		{"double negzero", math.Copysign(0, -1)},
		{"double nan", math.NaN()},
		{"double inf", math.Inf(1)},
		{"double -inf", math.Inf(-1)},
		{"double huge", 1e308},
		{"bytes", []byte{0x00, 0xff, 0x10, 0x20}},
		{"bytes empty", []byte{}},
		{"datetime", ts},
		{"datetime utc sec", time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)},
		{"array", Array{"a", int64(1), true}},
		{"array empty", Array{}},
		{"array nested", Array{Array{"x"}, nil}},
		{"struct", NewStruct(F("a", "x"), F("b", int64(2)))},
		{"struct empty", NewStruct()},
		{"struct nil", (*Struct)(nil)},
		{"struct nested", NewStruct(F("inner", NewStruct(F("deep", 1.5))))},
	}
	for _, tc := range cases {
		t.Run(tc.desc, func(t *testing.T) {
			want, wantErr := domEncodeString(t, "p", tc.v)
			got, gotErr := streamEncodeString(t, "p", tc.v)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("error divergence: dom=%v stream=%v", wantErr, gotErr)
			}
			if wantErr != nil {
				return
			}
			if got != want {
				t.Fatalf("byte divergence:\ndom:    %s\nstream: %s", want, got)
			}
		})
	}
}

func TestEncodeToErrors(t *testing.T) {
	cases := []struct {
		desc string
		v    Value
		want string
	}{
		{"unsupported", complex64(1), "soapenc: unsupported value type complex64"},
		{"empty struct field", NewStruct(F("", "x")), "soapenc: struct field with empty name"},
		{"unsupported in array", Array{uint(1)}, "soapenc: unsupported value type uint"},
	}
	for _, tc := range cases {
		t.Run(tc.desc, func(t *testing.T) {
			_, domErr := domEncodeString(t, "p", tc.v)
			_, streamErr := streamEncodeString(t, "p", tc.v)
			if domErr == nil || streamErr == nil {
				t.Fatalf("expected errors, dom=%v stream=%v", domErr, streamErr)
			}
			if domErr.Error() != streamErr.Error() {
				t.Fatalf("error text diverged:\ndom:    %v\nstream: %v", domErr, streamErr)
			}
			if streamErr.Error() != tc.want {
				t.Fatalf("error message changed: %v", streamErr)
			}
		})
	}
}

func TestEncodeParamsToParity(t *testing.T) {
	params := []Field{
		F("message", "hello & <world>"),
		F("count", int64(3)),
		F("when", time.Date(2021, 3, 4, 5, 6, 7, 0, time.UTC)),
	}
	parent := xmldom.NewElement(xmltext.Name{Local: "op"})
	if err := EncodeParams(parent, params); err != nil {
		t.Fatal(err)
	}
	want := parent.String()

	em := xmltext.AcquireEmitter()
	defer xmltext.ReleaseEmitter(em)
	em.Start(xmltext.Name{Local: "op"})
	if err := EncodeParamsTo(em, params); err != nil {
		t.Fatal(err)
	}
	em.End()
	if err := em.Err(); err != nil {
		t.Fatal(err)
	}
	if got := string(em.Bytes()); got != want {
		t.Fatalf("divergence:\ndom:    %s\nstream: %s", want, got)
	}

	if err := EncodeParamsTo(em, []Field{F("", "x")}); err == nil ||
		!strings.Contains(err.Error(), "parameter with empty name") {
		t.Fatalf("empty-name error changed: %v", err)
	}
}

// TestEncodeToStreamRoundTrip re-decodes stream-encoded values.
func TestEncodeToStreamRoundTrip(t *testing.T) {
	values := []Value{
		"text", int64(99), true, 2.5, []byte("blob"),
		Array{"a", int64(1)}, NewStruct(F("k", "v")),
	}
	for _, v := range values {
		s, err := streamEncodeString(t, "p", v)
		if err != nil {
			t.Fatal(err)
		}
		// Wrap so xsd/xsi/SOAP-ENC prefixes resolve during decode.
		doc := `<w xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"` +
			` xmlns:xsd="http://www.w3.org/2001/XMLSchema"` +
			` xmlns:SOAP-ENC="http://schemas.xmlsoap.org/soap/encoding/">` + s + `</w>`
		root, err := xmldom.ParseString(doc)
		if err != nil {
			t.Fatalf("parse %s: %v", doc, err)
		}
		got, err := Decode(root.ChildElements()[0])
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(got, v) {
			t.Fatalf("round trip changed value: %#v -> %#v", v, got)
		}
	}
}

func BenchmarkEncodeParamsToStream(b *testing.B) {
	params := []Field{F("message", "hello"), F("count", int64(3))}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		em := xmltext.AcquireEmitter()
		em.Start(xmltext.Name{Local: "op"})
		if err := EncodeParamsTo(em, params); err != nil {
			b.Fatal(err)
		}
		em.End()
		xmltext.ReleaseEmitter(em)
	}
}
