package stage

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Controller implements SEDA's thread-pool resource controller on top of a
// pool: it observes queue pressure and adjusts the number of live workers
// between a floor and a ceiling. The paper's staged architecture cites
// SEDA directly ("thread pool based event driven model [5]"), and SEDA's
// defining mechanism — beyond the queues the paper adopts — is this
// controller: "the thread pool controller adjusts the number of threads
// executing within each stage" (Welsh et al., SOSP'01 §4.2).
//
// Policy, following the SEDA paper: every Interval, if the queue length
// exceeds QueueThreshold, add a worker (up to MaxWorkers); if the pool has
// been idle — no queued events — for IdleShrink, remove a worker (down to
// MinWorkers).
type Controller struct {
	pool *AdaptivePool

	// Interval between observations (default 1ms — SEDA used small
	// periods relative to event service times).
	Interval time.Duration
	// QueueThreshold is the queue length that triggers growth (default 4).
	QueueThreshold int
	// IdleShrink is how long the queue must stay empty before a worker is
	// retired (default 100ms).
	IdleShrink time.Duration

	stop chan struct{}
	done chan struct{}
}

// AdaptivePool is a worker pool whose width is adjusted at runtime. It
// reuses Pool's bounded queue and adds worker lifecycle management.
type AdaptivePool struct {
	name string
	min  int
	max  int

	mu      sync.Mutex
	notAll  *sync.Cond
	queue   []Task
	closed  bool
	workers int // current worker count
	retire  int // workers asked to exit

	submitted atomic.Int64
	completed atomic.Int64
	busy      atomic.Int64
	grown     atomic.Int64
	shrunk    atomic.Int64

	queueCap int
	wg       sync.WaitGroup
}

// NewAdaptivePool starts a pool with min workers that may grow to max.
func NewAdaptivePool(name string, min, max, queueDepth int) (*AdaptivePool, error) {
	if min < 1 || max < min {
		return nil, errors.New("stage: adaptive pool needs 1 <= min <= max")
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	p := &AdaptivePool{name: name, min: min, max: max, queueCap: queueDepth}
	p.notAll = sync.NewCond(&p.mu)
	p.mu.Lock()
	for i := 0; i < min; i++ {
		p.spawnLocked()
	}
	p.mu.Unlock()
	return p, nil
}

// spawnLocked starts one worker. Caller holds p.mu.
func (p *AdaptivePool) spawnLocked() {
	p.workers++
	p.wg.Add(1)
	go p.worker()
}

func (p *AdaptivePool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed && p.retire == 0 {
			p.notAll.Wait()
		}
		if p.retire > 0 && !p.closed {
			// Retire this worker (but never below min).
			p.retire--
			p.workers--
			p.mu.Unlock()
			return
		}
		if len(p.queue) == 0 && p.closed {
			p.workers--
			p.mu.Unlock()
			return
		}
		task := p.queue[0]
		p.queue[0] = nil
		p.queue = p.queue[1:]
		p.notAll.Broadcast()
		p.mu.Unlock()

		p.busy.Add(1)
		func() {
			defer func() { recover() }()
			task()
		}()
		p.busy.Add(-1)
		p.completed.Add(1)
	}
}

// Submit enqueues a task, blocking while the queue is full.
func (p *AdaptivePool) Submit(task Task) error {
	if task == nil {
		return errors.New("stage: nil task")
	}
	p.mu.Lock()
	for len(p.queue) >= p.queueCap && !p.closed {
		p.notAll.Wait()
	}
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.queue = append(p.queue, task)
	p.notAll.Broadcast()
	p.mu.Unlock()
	p.submitted.Add(1)
	return nil
}

// SubmitTimeout enqueues, blocking at most timeout while the queue is
// full; ErrQueueFull once the timeout expires. A timeout <= 0 degenerates
// to TrySubmit.
func (p *AdaptivePool) SubmitTimeout(task Task, timeout time.Duration) error {
	if task == nil {
		return errors.New("stage: nil task")
	}
	if timeout <= 0 {
		return p.TrySubmit(task)
	}
	deadline := time.Now().Add(timeout)
	p.mu.Lock()
	for len(p.queue) >= p.queueCap && !p.closed {
		if !waitUntil(p.notAll, deadline) {
			p.mu.Unlock()
			return ErrQueueFull
		}
	}
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.queue = append(p.queue, task)
	p.notAll.Broadcast()
	p.mu.Unlock()
	p.submitted.Add(1)
	return nil
}

// TrySubmit enqueues without blocking; ErrQueueFull on a full queue.
func (p *AdaptivePool) TrySubmit(task Task) error {
	if task == nil {
		return errors.New("stage: nil task")
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	if len(p.queue) >= p.queueCap {
		p.mu.Unlock()
		return ErrQueueFull
	}
	p.queue = append(p.queue, task)
	p.notAll.Broadcast()
	p.mu.Unlock()
	p.submitted.Add(1)
	return nil
}

// PoolStats implements Executor, mapping adaptive counters onto the
// common stats shape.
func (p *AdaptivePool) PoolStats() Stats {
	st := p.Stats()
	return Stats{
		Submitted: st.Submitted,
		Completed: st.Completed,
		Workers:   st.Workers,
		QueueCap:  p.queueCap,
		Queued:    st.Queued,
		Busy:      st.Busy,
	}
}

// grow adds one worker if below max; it reports whether it did.
func (p *AdaptivePool) grow() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.workers-p.retire >= p.max {
		return false
	}
	if p.retire > 0 {
		// Cancel a pending retirement instead of spawning.
		p.retire--
	} else {
		p.spawnLocked()
	}
	p.grown.Add(1)
	return true
}

// shrink retires one worker if above min; it reports whether it did.
func (p *AdaptivePool) shrink() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.workers-p.retire <= p.min {
		return false
	}
	p.retire++
	p.notAll.Broadcast()
	p.shrunk.Add(1)
	return true
}

// Workers returns the current effective worker count.
func (p *AdaptivePool) Workers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.workers - p.retire
}

// QueueLen returns the current queue length.
func (p *AdaptivePool) QueueLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// AdaptiveStats is a snapshot of adaptive-pool counters.
type AdaptiveStats struct {
	Submitted int64
	Completed int64
	Workers   int
	Queued    int
	Busy      int64
	Grown     int64 // controller grow decisions
	Shrunk    int64 // controller shrink decisions
}

// Stats returns a snapshot.
func (p *AdaptivePool) Stats() AdaptiveStats {
	p.mu.Lock()
	workers := p.workers - p.retire
	queued := len(p.queue)
	p.mu.Unlock()
	return AdaptiveStats{
		Submitted: p.submitted.Load(),
		Completed: p.completed.Load(),
		Workers:   workers,
		Queued:    queued,
		Busy:      p.busy.Load(),
		Grown:     p.grown.Load(),
		Shrunk:    p.shrunk.Load(),
	}
}

// Close drains the queue and stops all workers.
func (p *AdaptivePool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.notAll.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// NewController attaches a SEDA-style resource controller to the pool and
// starts it. Stop it with Stop; the pool itself is not closed.
func NewController(pool *AdaptivePool) *Controller {
	c := &Controller{
		pool:           pool,
		Interval:       time.Millisecond,
		QueueThreshold: 4,
		IdleShrink:     100 * time.Millisecond,
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
	}
	go c.run()
	return c
}

func (c *Controller) run() {
	defer close(c.done)
	ticker := time.NewTicker(c.Interval)
	defer ticker.Stop()
	idleSince := time.Now()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}
		qlen := c.pool.QueueLen()
		if qlen > c.QueueThreshold {
			c.pool.grow()
			idleSince = time.Now()
			continue
		}
		if qlen > 0 || c.pool.busy.Load() > 0 {
			idleSince = time.Now()
			continue
		}
		if time.Since(idleSince) >= c.IdleShrink {
			if c.pool.shrink() {
				idleSince = time.Now()
			}
		}
	}
}

// Stop halts the controller and waits for its loop to exit.
func (c *Controller) Stop() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	<-c.done
}
