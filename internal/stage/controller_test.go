package stage

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAdaptivePoolRunsTasks(t *testing.T) {
	p, err := NewAdaptivePool("a", 2, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var n atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if err := p.Submit(func() { n.Add(1); wg.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if n.Load() != 100 {
		t.Errorf("ran %d tasks", n.Load())
	}
	st := p.Stats()
	if st.Submitted != 100 || st.Completed != 100 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAdaptivePoolValidation(t *testing.T) {
	if _, err := NewAdaptivePool("x", 0, 4, 1); err == nil {
		t.Error("min 0 accepted")
	}
	if _, err := NewAdaptivePool("x", 4, 2, 1); err == nil {
		t.Error("max < min accepted")
	}
	p, _ := NewAdaptivePool("x", 1, 2, 1)
	if err := p.Submit(nil); err == nil {
		t.Error("nil task accepted")
	}
	p.Close()
	if err := p.Submit(func() {}); err != ErrClosed {
		t.Errorf("submit after close = %v", err)
	}
	p.Close() // idempotent
}

func TestAdaptivePoolGrowShrinkBounds(t *testing.T) {
	p, err := NewAdaptivePool("b", 2, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if w := p.Workers(); w != 2 {
		t.Fatalf("initial workers = %d", w)
	}
	if !p.grow() || !p.grow() {
		t.Fatal("grow to max failed")
	}
	if p.grow() {
		t.Error("grew beyond max")
	}
	if w := p.Workers(); w != 4 {
		t.Errorf("workers after growth = %d", w)
	}
	if !p.shrink() || !p.shrink() {
		t.Fatal("shrink to min failed")
	}
	if p.shrink() {
		t.Error("shrank below min")
	}
	waitForWorkers(t, p, 2)
}

func waitForWorkers(t *testing.T, p *AdaptivePool, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.Workers() != want {
		if time.Now().After(deadline) {
			t.Fatalf("workers = %d, want %d", p.Workers(), want)
		}
		// Retiring workers need a queue wakeup to notice.
		p.Submit(func() {})
		time.Sleep(time.Millisecond)
	}
}

func TestControllerGrowsUnderLoad(t *testing.T) {
	p, err := NewAdaptivePool("c", 1, 8, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := NewController(p)
	defer c.Stop()

	// Saturate: slow tasks pile the queue up; the controller must add
	// workers well beyond the single starting one.
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		p.Submit(func() {
			time.Sleep(5 * time.Millisecond)
			wg.Done()
		})
	}
	wg.Wait()
	st := p.Stats()
	if st.Grown == 0 {
		t.Errorf("controller never grew the pool under load: %+v", st)
	}
}

func TestControllerShrinksWhenIdle(t *testing.T) {
	p, err := NewAdaptivePool("d", 1, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := NewController(p)
	c.IdleShrink = 10 * time.Millisecond
	defer c.Stop()

	// Load it up to grow...
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		p.Submit(func() { time.Sleep(3 * time.Millisecond); wg.Done() })
	}
	wg.Wait()
	grownTo := p.Workers()

	// ...then leave it idle and watch it come back down.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Shrunk == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("controller never shrank (workers %d -> %d)", grownTo, p.Workers())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestControllerStopIdempotent(t *testing.T) {
	p, _ := NewAdaptivePool("e", 1, 2, 4)
	defer p.Close()
	c := NewController(p)
	c.Stop()
	c.Stop()
}

func TestAdaptivePoolPanicIsolation(t *testing.T) {
	p, _ := NewAdaptivePool("f", 1, 2, 4)
	defer p.Close()
	var ok atomic.Bool
	var wg sync.WaitGroup
	wg.Add(2)
	p.Submit(func() { defer wg.Done(); panic("boom") })
	p.Submit(func() { defer wg.Done(); ok.Store(true) })
	wg.Wait()
	if !ok.Load() {
		t.Error("worker died after panic")
	}
}
