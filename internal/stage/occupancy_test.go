package stage

import (
	"testing"
	"time"
)

func TestOccupancy(t *testing.T) {
	for _, tc := range []struct {
		name string
		s    Stats
		want float64
	}{
		{"idle", Stats{Workers: 4, Busy: 0}, 0},
		{"half", Stats{Workers: 4, Busy: 2}, 0.5},
		{"full", Stats{Workers: 4, Busy: 4}, 1},
		{"over (transient busy > workers)", Stats{Workers: 4, Busy: 5}, 1},
		{"no workers", Stats{Workers: 0, Busy: 3}, 0},
	} {
		if got := tc.s.Occupancy(); got != tc.want {
			t.Errorf("%s: Occupancy = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestQueueLenObservesBacklog(t *testing.T) {
	// One worker parked on a gate; two more tasks must sit in the queue
	// where QueueLen can see them.
	p := MustPool("q", 1, 8)
	defer p.Close()
	gate := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(func() { close(started); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 2; i++ {
		if err := p.Submit(func() {}); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.QueueLen(); got != 2 {
		t.Errorf("QueueLen = %d, want 2", got)
	}
	if occ := p.Stats().Occupancy(); occ != 1 {
		t.Errorf("Occupancy = %v, want 1 (single worker busy)", occ)
	}
	close(gate)
	deadline := time.Now().Add(2 * time.Second)
	for p.QueueLen() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue never drained")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdaptivePoolQueueLen(t *testing.T) {
	p, err := NewAdaptivePool("aq", 1, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if got := p.QueueLen(); got != 0 {
		t.Errorf("idle QueueLen = %d, want 0", got)
	}
}
