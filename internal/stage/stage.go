// Package stage implements bounded, event-driven worker pools — the
// "staged independent thread pool" architecture of the paper's §3.3,
// borrowed from SEDA.
//
// The SPI server runs two stages: a protocol stage (HTTP + SOAP processing,
// one event per connection) and an application stage (service operation
// execution). Decoupling them through queues is what lets one SOAP message
// drive many concurrent service executions: the protocol thread parses the
// packed message, submits one task per request to the application stage,
// sleeps, and is woken when the assembler has gathered every response.
//
// The pool is thread-pool-based and event-driven rather than
// thread-per-task because, as the paper puts it, "too many concurrent
// threads will degrade throughput rapidly due to the frequent switch among
// threads" — the pool gives explicit, bounded concurrency instead.
package stage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Task is one unit of work executed by a pool worker.
type Task func()

// Executor is the submission surface shared by the fixed Pool and the
// SEDA-controlled AdaptivePool, letting the server swap pool policies.
type Executor interface {
	// Submit enqueues a task, blocking while the queue is full.
	Submit(Task) error
	// TrySubmit enqueues without blocking, returning ErrQueueFull on a
	// full queue.
	TrySubmit(Task) error
	// SubmitTimeout enqueues, blocking at most timeout while the queue is
	// full; it returns ErrQueueFull once the timeout expires (admission
	// control: overload is shed instead of queueing without bound).
	SubmitTimeout(Task, time.Duration) error
	// PoolStats snapshots the pool counters.
	PoolStats() Stats
	// QueueLen returns the instantaneous queue length — the cheap probe
	// the observability layer samples into its queue-depth gauge.
	QueueLen() int
	// Close drains accepted tasks and stops the workers.
	Close()
}

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("stage: pool closed")

// ErrQueueFull is returned by TrySubmit when the event queue is at capacity.
var ErrQueueFull = errors.New("stage: queue full")

// Stats is a snapshot of pool counters.
type Stats struct {
	Submitted int64 // tasks accepted
	Completed int64 // tasks finished (including panicked ones)
	Rejected  int64 // TrySubmit failures
	Panics    int64 // tasks that panicked
	Workers   int   // configured worker count
	QueueCap  int   // configured queue capacity
	Queued    int   // tasks currently waiting
	Busy      int64 // workers currently running a task
}

// Occupancy is the fraction of workers busy at snapshot time, in [0, 1] —
// the worker-utilization number the per-stage latency reports print next
// to queue depth.
func (s Stats) Occupancy() float64 {
	if s.Workers <= 0 {
		return 0
	}
	occ := float64(s.Busy) / float64(s.Workers)
	if occ > 1 {
		occ = 1
	}
	return occ
}

// Pool is a fixed-size worker pool fed by a bounded event queue.
//
// Closing the pool stops intake immediately but drains tasks already
// accepted: every Submit that returned nil is guaranteed to execute.
type Pool struct {
	name     string
	workers  int
	queueCap int

	mu     sync.Mutex
	notAll *sync.Cond // signals queue state changes (space or items or close)
	queue  []Task
	closed bool

	submitted atomic.Int64
	completed atomic.Int64
	rejected  atomic.Int64
	panics    atomic.Int64
	busy      atomic.Int64

	wg sync.WaitGroup

	// OnPanic, if set, observes recovered task panics (for logging).
	OnPanic func(recovered any)
}

// NewPool starts a pool with the given number of workers and queue depth.
// workers must be >= 1. queueDepth is clamped to at least 1.
func NewPool(name string, workers, queueDepth int) (*Pool, error) {
	if workers < 1 {
		return nil, fmt.Errorf("stage: pool %q needs >= 1 worker, got %d", name, workers)
	}
	if queueDepth < 0 {
		return nil, fmt.Errorf("stage: pool %q queue depth %d < 0", name, queueDepth)
	}
	if queueDepth == 0 {
		queueDepth = 1
	}
	p := &Pool{
		name:     name,
		workers:  workers,
		queueCap: queueDepth,
	}
	p.notAll = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p, nil
}

// MustPool is NewPool that panics on bad configuration, for initialization
// paths where the sizes are constants.
func MustPool(name string, workers, queueDepth int) *Pool {
	p, err := NewPool(name, workers, queueDepth)
	if err != nil {
		panic(err)
	}
	return p
}

// Name returns the pool's name.
func (p *Pool) Name() string { return p.name }

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.notAll.Wait()
		}
		if len(p.queue) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		task := p.queue[0]
		p.queue[0] = nil
		p.queue = p.queue[1:]
		p.notAll.Broadcast() // space freed: wake blocked submitters
		p.mu.Unlock()

		p.busy.Add(1)
		p.run(task)
		p.busy.Add(-1)
		p.completed.Add(1)
	}
}

func (p *Pool) run(task Task) {
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
			if p.OnPanic != nil {
				p.OnPanic(r)
			}
		}
	}()
	task()
}

// Submit enqueues a task, blocking while the queue is full. It returns
// ErrClosed if the pool is closed (including while blocked waiting for
// space). A nil return guarantees the task will run.
func (p *Pool) Submit(task Task) error {
	if task == nil {
		return errors.New("stage: nil task")
	}
	p.mu.Lock()
	for len(p.queue) >= p.queueCap && !p.closed {
		p.notAll.Wait()
	}
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.queue = append(p.queue, task)
	p.notAll.Broadcast()
	p.mu.Unlock()
	p.submitted.Add(1)
	return nil
}

// SubmitTimeout enqueues a task, blocking at most timeout while the queue
// is full. It returns ErrQueueFull when space does not free up in time and
// ErrClosed if the pool closes while waiting — the queue-admission guard
// of the server's resilience layer. A timeout <= 0 degenerates to
// TrySubmit.
func (p *Pool) SubmitTimeout(task Task, timeout time.Duration) error {
	if task == nil {
		return errors.New("stage: nil task")
	}
	if timeout <= 0 {
		return p.TrySubmit(task)
	}
	deadline := time.Now().Add(timeout)
	p.mu.Lock()
	for len(p.queue) >= p.queueCap && !p.closed {
		if !waitUntil(p.notAll, deadline) {
			p.mu.Unlock()
			p.rejected.Add(1)
			return ErrQueueFull
		}
	}
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.queue = append(p.queue, task)
	p.notAll.Broadcast()
	p.mu.Unlock()
	p.submitted.Add(1)
	return nil
}

// waitUntil waits on cond (whose lock the caller holds) until a broadcast
// or roughly the deadline; it reports false once the deadline has passed.
// sync.Cond has no native timed wait, so a timer broadcast bounds the
// sleep; spurious wakeups are fine because every caller re-checks its
// predicate in a loop.
func waitUntil(cond *sync.Cond, deadline time.Time) bool {
	remaining := time.Until(deadline)
	if remaining <= 0 {
		return false
	}
	timer := time.AfterFunc(remaining, cond.Broadcast)
	cond.Wait()
	timer.Stop()
	return time.Now().Before(deadline)
}

// TrySubmit enqueues a task without blocking; it returns ErrQueueFull when
// the queue is at capacity (overload shedding).
func (p *Pool) TrySubmit(task Task) error {
	if task == nil {
		return errors.New("stage: nil task")
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	if len(p.queue) >= p.queueCap {
		p.mu.Unlock()
		p.rejected.Add(1)
		return ErrQueueFull
	}
	p.queue = append(p.queue, task)
	p.notAll.Broadcast()
	p.mu.Unlock()
	p.submitted.Add(1)
	return nil
}

// Close stops accepting tasks, lets queued tasks drain, and waits for all
// workers to exit. It is idempotent and safe to call concurrently.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.notAll.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// PoolStats implements Executor.
func (p *Pool) PoolStats() Stats { return p.Stats() }

// QueueLen returns the current queue length.
func (p *Pool) QueueLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	queued := len(p.queue)
	p.mu.Unlock()
	return Stats{
		Submitted: p.submitted.Load(),
		Completed: p.completed.Load(),
		Rejected:  p.rejected.Load(),
		Panics:    p.panics.Load(),
		Workers:   p.workers,
		QueueCap:  p.queueCap,
		Queued:    queued,
		Busy:      p.busy.Load(),
	}
}

// Barrier tracks a batch of tasks fanned out to a pool and lets the
// submitting goroutine sleep until every task has completed — the paper's
// protocol-thread sleep/wake handoff. It is a counting completion latch.
type Barrier struct {
	wg sync.WaitGroup
}

// Go submits fn to the pool as part of the batch. If submission fails the
// error is returned and the batch is not grown.
func (b *Barrier) Go(p Executor, fn func()) error {
	b.wg.Add(1)
	err := p.Submit(func() {
		defer b.wg.Done()
		fn()
	})
	if err != nil {
		b.wg.Done()
		return err
	}
	return nil
}

// Wait blocks until every task submitted through Go has completed.
func (b *Barrier) Wait() { b.wg.Wait() }
