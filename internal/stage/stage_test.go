package stage

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsTasks(t *testing.T) {
	p := MustPool("test", 4, 16)
	defer p.Close()
	var n atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if err := p.Submit(func() {
			n.Add(1)
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if n.Load() != 100 {
		t.Errorf("ran %d tasks, want 100", n.Load())
	}
}

func TestPoolConcurrencyBound(t *testing.T) {
	const workers = 3
	p := MustPool("bounded", workers, 64)
	defer p.Close()
	var cur, max atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		p.Submit(func() {
			defer wg.Done()
			c := cur.Add(1)
			for {
				m := max.Load()
				if c <= m || max.CompareAndSwap(m, c) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			cur.Add(-1)
		})
	}
	wg.Wait()
	if m := max.Load(); m > workers {
		t.Errorf("observed %d concurrent tasks, pool has %d workers", m, workers)
	}
}

func TestPoolCloseDrains(t *testing.T) {
	p := MustPool("drain", 2, 64)
	var n atomic.Int32
	for i := 0; i < 20; i++ {
		p.Submit(func() {
			time.Sleep(time.Millisecond)
			n.Add(1)
		})
	}
	p.Close()
	if n.Load() != 20 {
		t.Errorf("after Close, %d tasks completed, want 20 (queued tasks must drain)", n.Load())
	}
	if err := p.Submit(func() {}); err != ErrClosed {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
}

func TestPoolCloseIdempotentAndConcurrent(t *testing.T) {
	p := MustPool("close", 2, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Close()
		}()
	}
	wg.Wait()
}

func TestTrySubmitSheds(t *testing.T) {
	p := MustPool("shed", 1, 1)
	defer p.Close()
	block := make(chan struct{})
	// Occupy the worker.
	p.Submit(func() { <-block })
	// Fill the queue.
	waitFor(t, func() bool { return p.Submit(func() {}) == nil })
	// Now the queue is full (one task running, one queued).
	waitFor(t, func() bool { return p.TrySubmit(func() {}) == ErrQueueFull })
	close(block)
	st := p.Stats()
	if st.Rejected < 1 {
		t.Errorf("rejected = %d, want >= 1", st.Rejected)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPanicRecovery(t *testing.T) {
	p := MustPool("panicky", 1, 4)
	defer p.Close()
	var recovered atomic.Value
	p.OnPanic = func(r any) { recovered.Store(r) }
	var ok atomic.Bool
	var wg sync.WaitGroup
	wg.Add(2)
	p.Submit(func() { defer wg.Done(); panic("kaboom") })
	p.Submit(func() { defer wg.Done(); ok.Store(true) })
	wg.Wait()
	if !ok.Load() {
		t.Error("worker died after panic")
	}
	if recovered.Load() != "kaboom" {
		t.Errorf("OnPanic got %v", recovered.Load())
	}
	if p.Stats().Panics != 1 {
		t.Errorf("panics = %d", p.Stats().Panics)
	}
}

func TestStats(t *testing.T) {
	p := MustPool("stats", 2, 8)
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		p.Submit(func() { wg.Done() })
	}
	wg.Wait()
	p.Close()
	st := p.Stats()
	if st.Submitted != 10 || st.Completed != 10 {
		t.Errorf("stats = %+v", st)
	}
	if st.Workers != 2 || st.QueueCap != 8 {
		t.Errorf("config stats = %+v", st)
	}
	if p.Name() != "stats" {
		t.Errorf("name = %q", p.Name())
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := NewPool("x", 0, 1); err == nil {
		t.Error("0 workers accepted")
	}
	if _, err := NewPool("x", 1, -1); err == nil {
		t.Error("negative queue accepted")
	}
	if err := MustPool("x", 1, 0).Submit(nil); err == nil {
		t.Error("nil task accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustPool did not panic")
		}
	}()
	MustPool("bad", 0, 0)
}

func TestBarrier(t *testing.T) {
	p := MustPool("barrier", 4, 16)
	defer p.Close()
	var n atomic.Int32
	var b Barrier
	for i := 0; i < 25; i++ {
		if err := b.Go(p, func() {
			time.Sleep(time.Millisecond)
			n.Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	b.Wait()
	if n.Load() != 25 {
		t.Errorf("barrier released with %d/25 tasks done", n.Load())
	}
}

func TestBarrierSubmitFailure(t *testing.T) {
	p := MustPool("closed-barrier", 1, 0)
	p.Close()
	var b Barrier
	if err := b.Go(p, func() {}); err != ErrClosed {
		t.Errorf("Go on closed pool = %v", err)
	}
	b.Wait() // must not hang
}

func TestSubmitBlockedDuringCloseReturnsErr(t *testing.T) {
	p := MustPool("race", 1, 0)
	block := make(chan struct{})
	p.Submit(func() { <-block })

	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			errs <- p.Submit(func() {})
		}()
	}
	time.Sleep(5 * time.Millisecond)
	close(block)
	p.Close()
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil && err != ErrClosed {
			t.Errorf("unexpected error: %v", err)
		}
	}
}
