package stage

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestSubmitTimeoutShedsWhenFull(t *testing.T) {
	p := MustPool("admit", 1, 1)
	defer p.Close()
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{})
	p.Submit(func() { close(started); <-block })
	<-started // the worker holds this task; the queue is truly empty now
	waitFor(t, func() bool { return p.TrySubmit(func() {}) == ErrQueueFull })

	start := time.Now()
	err := p.SubmitTimeout(func() {}, 20*time.Millisecond)
	if err != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond || elapsed > 2*time.Second {
		t.Errorf("waited %v, want ~20ms of admission patience", elapsed)
	}
	if p.Stats().Rejected < 1 {
		t.Error("shed admission not counted as rejected")
	}
}

func TestSubmitTimeoutAdmitsWhenSpaceFrees(t *testing.T) {
	p := MustPool("admit2", 1, 1)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	p.Submit(func() { close(started); <-block })
	<-started
	waitFor(t, func() bool { return p.TrySubmit(func() {}) == ErrQueueFull })

	var ran atomic.Bool
	done := make(chan error, 1)
	go func() { done <- p.SubmitTimeout(func() { ran.Store(true) }, 2*time.Second) }()
	time.Sleep(10 * time.Millisecond) // let it block on the full queue
	close(block)
	if err := <-done; err != nil {
		t.Fatalf("SubmitTimeout = %v after space freed", err)
	}
	waitFor(t, func() bool { return ran.Load() })
}

func TestSubmitTimeoutZeroDegeneratesToTrySubmit(t *testing.T) {
	p := MustPool("admit3", 1, 1)
	defer p.Close()
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{})
	p.Submit(func() { close(started); <-block })
	<-started // the worker holds this task; the queue is truly empty now
	waitFor(t, func() bool { return p.TrySubmit(func() {}) == ErrQueueFull })
	start := time.Now()
	if err := p.SubmitTimeout(func() {}, 0); err != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Error("zero timeout should not block")
	}
}

func TestSubmitTimeoutClosedPool(t *testing.T) {
	p := MustPool("admit4", 1, 1)
	p.Close()
	if err := p.SubmitTimeout(func() {}, 10*time.Millisecond); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestAdaptiveSubmitTimeout(t *testing.T) {
	p, err := NewAdaptivePool("adaptive-admit", 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{})
	p.Submit(func() { close(started); <-block })
	<-started // the worker holds this task; the queue is truly empty now
	waitFor(t, func() bool { return p.TrySubmit(func() {}) == ErrQueueFull })
	if err := p.SubmitTimeout(func() {}, 10*time.Millisecond); err != ErrQueueFull {
		t.Fatalf("adaptive err = %v, want ErrQueueFull", err)
	}
}
