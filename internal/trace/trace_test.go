package trace

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if id := tr.Begin(); id != 0 {
		t.Errorf("nil Begin = %d, want 0", id)
	}
	tr.Record(Span{Stage: StageApp, Service: time.Millisecond})
	tr.Reset()
	if tr.Snapshot() != nil || tr.Stages() != nil || tr.Gauges() != nil || tr.Dropped() != 0 {
		t.Error("nil tracer accessors must return zero values")
	}
	tr.Gauge("x").Set(1) // nil gauge from nil tracer: still a no-op
}

func TestBeginUnique(t *testing.T) {
	tr := New(16)
	a, b := tr.Begin(), tr.Begin()
	if a == 0 || b == 0 || a == b {
		t.Errorf("Begin ids = %d, %d; want distinct non-zero", a, b)
	}
}

func TestRecordAndSnapshotOrder(t *testing.T) {
	tr := New(8)
	for i := 0; i < 5; i++ {
		tr.Record(Span{Stage: StageApp, ID: i, Service: time.Duration(i) * time.Millisecond})
	}
	spans := tr.Snapshot()
	if len(spans) != 5 {
		t.Fatalf("len = %d, want 5", len(spans))
	}
	for i, s := range spans {
		if s.ID != i {
			t.Errorf("spans[%d].ID = %d, want %d (oldest first)", i, s.ID, i)
		}
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := New(4)
	for i := 0; i < 7; i++ {
		tr.Record(Span{Stage: StageApp, ID: i})
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("len = %d, want capacity 4", len(spans))
	}
	for i, s := range spans {
		if want := 3 + i; s.ID != want {
			t.Errorf("spans[%d].ID = %d, want %d", i, s.ID, want)
		}
	}
	if tr.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", tr.Dropped())
	}
}

func TestStagesAggregatesAndOrders(t *testing.T) {
	tr := New(64)
	// Record out of path order plus one custom stage.
	tr.Record(Span{Stage: StageApp, Queue: 2 * time.Millisecond, Service: 5 * time.Millisecond})
	tr.Record(Span{Stage: StageApp, Queue: 4 * time.Millisecond, Service: 7 * time.Millisecond})
	tr.Record(Span{Stage: StageProtocol, Service: time.Millisecond})
	tr.Record(Span{Stage: "custom.stage", Service: time.Millisecond})
	tr.Record(Span{Stage: StageClientPack, Service: time.Millisecond})

	stages := tr.Stages()
	gotOrder := make([]string, len(stages))
	for i, s := range stages {
		gotOrder[i] = s.Stage
	}
	want := []string{StageClientPack, StageProtocol, StageApp, "custom.stage"}
	if fmt.Sprint(gotOrder) != fmt.Sprint(want) {
		t.Errorf("stage order = %v, want %v", gotOrder, want)
	}
	for _, s := range stages {
		if s.Stage != StageApp {
			continue
		}
		if s.Spans != 2 {
			t.Errorf("app Spans = %d, want 2", s.Spans)
		}
		if s.Queue.Sum != 6*time.Millisecond {
			t.Errorf("app queue Sum = %v, want 6ms", s.Queue.Sum)
		}
		if s.Service.Sum != 12*time.Millisecond {
			t.Errorf("app service Sum = %v, want 12ms", s.Service.Sum)
		}
	}
}

func TestReset(t *testing.T) {
	tr := New(4)
	id := tr.Begin()
	for i := 0; i < 6; i++ {
		tr.Record(Span{Stage: StageApp})
	}
	tr.Gauge("q").Set(9)
	tr.Reset()
	if len(tr.Snapshot()) != 0 || len(tr.Stages()) != 0 || len(tr.Gauges()) != 0 || tr.Dropped() != 0 {
		t.Error("Reset left state behind")
	}
	if next := tr.Begin(); next <= id {
		t.Errorf("trace ids must keep counting across Reset: %d then %d", id, next)
	}
}

func TestGauges(t *testing.T) {
	tr := New(4)
	tr.Gauge("b.queue").Set(3)
	tr.Gauge("b.queue").Set(1)
	tr.Gauge("a.depth").Set(7)
	gs := tr.Gauges()
	if len(gs) != 2 || gs[0].Name != "a.depth" || gs[1].Name != "b.queue" {
		t.Fatalf("Gauges = %+v, want sorted [a.depth b.queue]", gs)
	}
	if gs[1].Value != 1 || gs[1].Peak != 3 {
		t.Errorf("b.queue = %+v, want Value 1 Peak 3", gs[1])
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != 0 {
		t.Error("empty context must yield trace id 0")
	}
	ctx = NewContext(ctx, 42)
	if got := FromContext(ctx); got != 42 {
		t.Errorf("FromContext = %d, want 42", got)
	}
}

func TestTotal(t *testing.T) {
	s := Span{Queue: 2 * time.Millisecond, Service: 3 * time.Millisecond}
	if s.Total() != 5*time.Millisecond {
		t.Errorf("Total = %v, want 5ms", s.Total())
	}
}

func TestConcurrentRecord(t *testing.T) {
	tr := New(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Record(Span{Trace: tr.Begin(), Stage: StageApp, Service: time.Microsecond})
				tr.Gauge("q").Set(int64(i))
			}
		}()
	}
	wg.Wait()
	var total int64
	for _, s := range tr.Stages() {
		total += s.Spans
	}
	if total != 4000 {
		t.Errorf("aggregated spans = %d, want 4000", total)
	}
	if len(tr.Snapshot()) != 128 {
		t.Errorf("ring holds %d, want capacity 128", len(tr.Snapshot()))
	}
}
