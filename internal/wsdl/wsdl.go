// Package wsdl generates and parses WSDL 1.1 service descriptions for
// services deployed in a registry container.
//
// The paper's stack describes services with WSDL ("The Web Services
// Description Language describes Web Services interface"); clients use the
// description to learn a service's namespace and operations. This package
// implements the RPC-style subset those toolkits exchanged: a definitions
// document with one portType listing the operations, a SOAP binding, and a
// service element carrying the endpoint address. Message part types are
// loosely typed (xsd:anyType), matching the dynamically-typed parameter
// model of package soapenc.
package wsdl

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/registry"
	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// Namespace URIs of WSDL 1.1.
const (
	// NS is the WSDL 1.1 namespace.
	NS = "http://schemas.xmlsoap.org/wsdl/"
	// NSSOAP is the WSDL SOAP binding namespace.
	NSSOAP = "http://schemas.xmlsoap.org/wsdl/soap/"
	// soapTransportHTTP identifies the HTTP transport in bindings.
	soapTransportHTTP = "http://schemas.xmlsoap.org/soap/http"
)

// Describe builds the WSDL document for one deployed service, with the
// given endpoint address (e.g. "http://host/services/Echo").
func Describe(svc *registry.Service, address string) *xmldom.Element {
	defs := xmldom.NewElement(xmltext.Name{Prefix: "wsdl", Local: "definitions"})
	defs.DeclareNamespace("wsdl", NS)
	defs.DeclareNamespace("soap", NSSOAP)
	defs.DeclareNamespace("tns", svc.Namespace)
	defs.DeclareNamespace("xsd", "http://www.w3.org/2001/XMLSchema")
	defs.SetAttr(xmltext.Name{Local: "name"}, svc.Name)
	defs.SetAttr(xmltext.Name{Local: "targetNamespace"}, svc.Namespace)

	ops := svc.Operations()

	// Messages: one request/response pair per operation.
	for _, op := range ops {
		req := defs.AddElement(xmltext.Name{Prefix: "wsdl", Local: "message"})
		req.SetAttr(xmltext.Name{Local: "name"}, op.Name+"Request")
		part := req.AddElement(xmltext.Name{Prefix: "wsdl", Local: "part"})
		part.SetAttr(xmltext.Name{Local: "name"}, "parameters")
		part.SetAttr(xmltext.Name{Local: "type"}, "xsd:anyType")

		resp := defs.AddElement(xmltext.Name{Prefix: "wsdl", Local: "message"})
		resp.SetAttr(xmltext.Name{Local: "name"}, op.Name+"Response")
		part = resp.AddElement(xmltext.Name{Prefix: "wsdl", Local: "part"})
		part.SetAttr(xmltext.Name{Local: "name"}, "result")
		part.SetAttr(xmltext.Name{Local: "type"}, "xsd:anyType")
	}

	// PortType: the abstract interface.
	pt := defs.AddElement(xmltext.Name{Prefix: "wsdl", Local: "portType"})
	pt.SetAttr(xmltext.Name{Local: "name"}, svc.Name+"PortType")
	for _, op := range ops {
		o := pt.AddElement(xmltext.Name{Prefix: "wsdl", Local: "operation"})
		o.SetAttr(xmltext.Name{Local: "name"}, op.Name)
		if op.Doc != "" {
			doc := o.AddElement(xmltext.Name{Prefix: "wsdl", Local: "documentation"})
			doc.SetText(op.Doc)
		}
		in := o.AddElement(xmltext.Name{Prefix: "wsdl", Local: "input"})
		in.SetAttr(xmltext.Name{Local: "message"}, "tns:"+op.Name+"Request")
		out := o.AddElement(xmltext.Name{Prefix: "wsdl", Local: "output"})
		out.SetAttr(xmltext.Name{Local: "message"}, "tns:"+op.Name+"Response")
	}

	// Binding: RPC/encoded over HTTP.
	binding := defs.AddElement(xmltext.Name{Prefix: "wsdl", Local: "binding"})
	binding.SetAttr(xmltext.Name{Local: "name"}, svc.Name+"Binding")
	binding.SetAttr(xmltext.Name{Local: "type"}, "tns:"+svc.Name+"PortType")
	sb := binding.AddElement(xmltext.Name{Prefix: "soap", Local: "binding"})
	sb.SetAttr(xmltext.Name{Local: "style"}, "rpc")
	sb.SetAttr(xmltext.Name{Local: "transport"}, soapTransportHTTP)
	for _, op := range ops {
		o := binding.AddElement(xmltext.Name{Prefix: "wsdl", Local: "operation"})
		o.SetAttr(xmltext.Name{Local: "name"}, op.Name)
		so := o.AddElement(xmltext.Name{Prefix: "soap", Local: "operation"})
		so.SetAttr(xmltext.Name{Local: "soapAction"}, "")
	}

	// Service: the concrete endpoint.
	service := defs.AddElement(xmltext.Name{Prefix: "wsdl", Local: "service"})
	service.SetAttr(xmltext.Name{Local: "name"}, svc.Name)
	if svc.Doc != "" {
		doc := service.AddElement(xmltext.Name{Prefix: "wsdl", Local: "documentation"})
		doc.SetText(svc.Doc)
	}
	port := service.AddElement(xmltext.Name{Prefix: "wsdl", Local: "port"})
	port.SetAttr(xmltext.Name{Local: "name"}, svc.Name+"Port")
	port.SetAttr(xmltext.Name{Local: "binding"}, "tns:"+svc.Name+"Binding")
	sa := port.AddElement(xmltext.Name{Prefix: "soap", Local: "address"})
	sa.SetAttr(xmltext.Name{Local: "location"}, address)

	return defs
}

// Description is the client-facing digest of a parsed WSDL document.
type Description struct {
	Service    string
	Namespace  string
	Address    string
	Operations []string
	Doc        string
}

// Parse reads a WSDL document and extracts the description.
func Parse(r io.Reader) (*Description, error) {
	root, err := xmldom.Parse(r)
	if err != nil {
		return nil, fmt.Errorf("wsdl: %w", err)
	}
	if !root.Is(NS, "definitions") {
		return nil, fmt.Errorf("wsdl: root is {%s}%s, not wsdl:definitions", root.Namespace(), root.Name.Local)
	}
	d := &Description{
		Service:   root.AttrValue(xmltext.Name{Local: "name"}),
		Namespace: root.AttrValue(xmltext.Name{Local: "targetNamespace"}),
	}
	if d.Namespace == "" {
		return nil, fmt.Errorf("wsdl: missing targetNamespace")
	}
	if pt := root.Child(NS, "portType"); pt != nil {
		for _, op := range pt.ChildrenNamed(NS, "operation") {
			if name := op.AttrValue(xmltext.Name{Local: "name"}); name != "" {
				d.Operations = append(d.Operations, name)
			}
		}
	}
	if svc := root.Child(NS, "service"); svc != nil {
		if d.Service == "" {
			d.Service = svc.AttrValue(xmltext.Name{Local: "name"})
		}
		if doc := svc.Child(NS, "documentation"); doc != nil {
			d.Doc = strings.TrimSpace(doc.Text())
		}
		if port := svc.Child(NS, "port"); port != nil {
			if addr := port.Child(NSSOAP, "address"); addr != nil {
				d.Address = addr.AttrValue(xmltext.Name{Local: "location"})
			}
		}
	}
	if d.Service == "" {
		return nil, fmt.Errorf("wsdl: missing service name")
	}
	return d, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Description, error) {
	return Parse(strings.NewReader(s))
}
