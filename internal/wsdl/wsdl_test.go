package wsdl

import (
	"strings"
	"testing"

	"repro/internal/registry"
	"repro/internal/soapenc"
)

func newService(t *testing.T) *registry.Service {
	t.Helper()
	c := registry.NewContainer()
	svc := c.MustAddService("Echo", "urn:spi:Echo", "echo service for tests")
	h := func(ctx *registry.Context, p []soapenc.Field) ([]soapenc.Field, error) { return p, nil }
	svc.MustRegister("echo", h, "identity")
	svc.MustRegister("echoSize", h, "size only")
	return svc
}

func TestDescribeParseRoundTrip(t *testing.T) {
	svc := newService(t)
	doc := Describe(svc, "http://server/services/Echo")
	d, err := ParseString(doc.String())
	if err != nil {
		t.Fatalf("parse generated WSDL: %v\n%s", err, doc)
	}
	if d.Service != "Echo" {
		t.Errorf("service = %q", d.Service)
	}
	if d.Namespace != "urn:spi:Echo" {
		t.Errorf("namespace = %q", d.Namespace)
	}
	if d.Address != "http://server/services/Echo" {
		t.Errorf("address = %q", d.Address)
	}
	if len(d.Operations) != 2 || d.Operations[0] != "echo" || d.Operations[1] != "echoSize" {
		t.Errorf("operations = %v", d.Operations)
	}
	if d.Doc != "echo service for tests" {
		t.Errorf("doc = %q", d.Doc)
	}
}

func TestDescribeStructure(t *testing.T) {
	svc := newService(t)
	out := Describe(svc, "http://x/services/Echo").String()
	for _, want := range []string{
		`targetNamespace="urn:spi:Echo"`,
		`<wsdl:portType name="EchoPortType">`,
		`<wsdl:operation name="echo">`,
		`message="tns:echoRequest"`,
		`message="tns:echoResponse"`,
		`style="rpc"`,
		`transport="http://schemas.xmlsoap.org/soap/http"`,
		`<soap:address location="http://x/services/Echo"/>`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WSDL missing %q:\n%s", want, out)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`<notwsdl/>`,
		`<wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"/>`, // no targetNamespace
		`broken <xml`,
		`<wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/" targetNamespace="urn:x"/>`, // no service name
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) succeeded", src)
		}
	}
}

func TestParseMinimal(t *testing.T) {
	src := `<wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"
	  targetNamespace="urn:min" name="Min">
	  <wsdl:portType name="MinPortType">
	    <wsdl:operation name="go"/>
	  </wsdl:portType>
	</wsdl:definitions>`
	d, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if d.Service != "Min" || len(d.Operations) != 1 || d.Operations[0] != "go" {
		t.Errorf("description = %+v", d)
	}
}
