// Package wsse implements a WS-Security-style SOAP header block:
// a UsernameToken with nonce/timestamp plus an HMAC-SHA256 signature over
// the canonical body.
//
// The paper's conclusion argues that "if some Web Services specifications
// add the overhead to SOAP Header, such as WS-security, the merit of our
// approach can be greater", and names experiments with WS-Security as
// future work. This package makes that experiment runnable: it adds a
// realistic few-hundred-byte authenticated header to every envelope, which
// is per-message overhead the pack interface amortizes across M requests.
//
// The construction follows the shape of OASIS WSS 1.0 UsernameToken
// profile (password digest = Base64(SHA256(nonce + created + secret)))
// with an added body MAC; it is intentionally self-contained rather than a
// full XML-DSig implementation, which the stdlib-only constraint rules out
// and the experiment does not need — what matters for the measurement is
// the header's size and verification cost.
package wsse

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/xmldom"
	"repro/internal/xmltext"
)

// Namespace and element names of the header block.
const (
	// NS is the WS-Security extension namespace (OASIS WSS 1.0).
	NS = "http://docs.oasis-open.org/wss/2004/01/oasis-200401-wss-wssecurity-secext-1.0.xsd"
	// Prefix is the conventional prefix.
	Prefix = "wsse"
	// ElemSecurity is the header block's local name.
	ElemSecurity = "Security"
)

// Clock abstracts time for tests.
type Clock func() time.Time

// Signer produces Security header blocks for outgoing envelopes. It
// implements the client-side HeaderProvider contract of package core.
type Signer struct {
	// Username identifies the caller.
	Username string
	// Secret is the shared key for digest and MAC computation.
	Secret []byte
	// MustUnderstand marks the header mustUnderstand="1" so unaware
	// receivers fault instead of silently skipping authentication.
	MustUnderstand bool
	// Now supplies timestamps (defaults to time.Now).
	Now Clock
}

// MakeHeaders builds the Security block covering the given canonical body.
func (s *Signer) MakeHeaders(body []byte) ([]*xmldom.Element, error) {
	if s.Username == "" || len(s.Secret) == 0 {
		return nil, errors.New("wsse: signer needs username and secret")
	}
	now := time.Now
	if s.Now != nil {
		now = s.Now
	}
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("wsse: nonce: %w", err)
	}
	created := now().UTC().Format(time.RFC3339)

	sec := xmldom.NewElement(xmltext.Name{Prefix: Prefix, Local: ElemSecurity})
	sec.DeclareNamespace(Prefix, NS)
	if s.MustUnderstand {
		sec.DeclareNamespace("S", "http://schemas.xmlsoap.org/soap/envelope/")
		sec.SetAttr(xmltext.Name{Prefix: "S", Local: "mustUnderstand"}, "1")
	}

	tok := sec.AddElement(xmltext.Name{Prefix: Prefix, Local: "UsernameToken"})
	tok.AddElement(xmltext.Name{Prefix: Prefix, Local: "Username"}).SetText(s.Username)
	tok.AddElement(xmltext.Name{Prefix: Prefix, Local: "Nonce"}).
		SetText(base64.StdEncoding.EncodeToString(nonce))
	tok.AddElement(xmltext.Name{Prefix: Prefix, Local: "Created"}).SetText(created)
	tok.AddElement(xmltext.Name{Prefix: Prefix, Local: "PasswordDigest"}).
		SetText(passwordDigest(nonce, created, s.Secret))

	sig := sec.AddElement(xmltext.Name{Prefix: Prefix, Local: "BodySignature"})
	sig.AddElement(xmltext.Name{Prefix: Prefix, Local: "Algorithm"}).SetText("hmac-sha256")
	sig.AddElement(xmltext.Name{Prefix: Prefix, Local: "Value"}).
		SetText(bodyMAC(nonce, created, s.Secret, body))

	return []*xmldom.Element{sec}, nil
}

// passwordDigest is Base64(SHA256(nonce || created || secret)).
func passwordDigest(nonce []byte, created string, secret []byte) string {
	h := sha256.New()
	h.Write(nonce)
	h.Write([]byte(created))
	h.Write(secret)
	return base64.StdEncoding.EncodeToString(h.Sum(nil))
}

// bodyMAC is Base64(HMAC-SHA256(secret, nonce || created || body)).
func bodyMAC(nonce []byte, created string, secret, body []byte) string {
	m := hmac.New(sha256.New, secret)
	m.Write(nonce)
	m.Write([]byte(created))
	m.Write(body)
	return base64.StdEncoding.EncodeToString(m.Sum(nil))
}

// Verifier validates Security header blocks on the server. It implements
// the HeaderProcessor contract of package core.
type Verifier struct {
	// Secrets maps usernames to shared keys.
	Secrets map[string][]byte
	// MaxAge rejects tokens older than this (default 5 minutes).
	MaxAge time.Duration
	// Now supplies the verification time (defaults to time.Now).
	Now Clock

	// seen remembers recent nonces for replay rejection.
	mu   sync.Mutex
	seen map[string]time.Time
}

// HeaderName identifies the blocks this processor consumes.
func (v *Verifier) HeaderName() (string, string) { return NS, ElemSecurity }

// ProcessHeader verifies one Security block against the canonical body.
func (v *Verifier) ProcessHeader(block *xmldom.Element, body []byte) error {
	tok := block.Child(NS, "UsernameToken")
	if tok == nil {
		return errors.New("wsse: missing UsernameToken")
	}
	username := childText(tok, "Username")
	nonceB64 := childText(tok, "Nonce")
	created := childText(tok, "Created")
	digest := childText(tok, "PasswordDigest")
	if username == "" || nonceB64 == "" || created == "" || digest == "" {
		return errors.New("wsse: incomplete UsernameToken")
	}
	secret, ok := v.Secrets[username]
	if !ok {
		return fmt.Errorf("wsse: unknown user %q", username)
	}
	nonce, err := base64.StdEncoding.DecodeString(nonceB64)
	if err != nil {
		return errors.New("wsse: malformed nonce")
	}

	now := time.Now
	if v.Now != nil {
		now = v.Now
	}
	maxAge := v.MaxAge
	if maxAge <= 0 {
		maxAge = 5 * time.Minute
	}
	ts, err := time.Parse(time.RFC3339, created)
	if err != nil {
		return errors.New("wsse: malformed Created timestamp")
	}
	age := now().Sub(ts)
	if age > maxAge || age < -maxAge {
		return errors.New("wsse: token expired")
	}

	if !hmac.Equal([]byte(digest), []byte(passwordDigest(nonce, created, secret))) {
		return errors.New("wsse: bad password digest")
	}

	sig := block.Child(NS, "BodySignature")
	if sig == nil {
		return errors.New("wsse: missing BodySignature")
	}
	if alg := childText(sig, "Algorithm"); alg != "hmac-sha256" {
		return fmt.Errorf("wsse: unsupported algorithm %q", alg)
	}
	want := bodyMAC(nonce, created, secret, body)
	if !hmac.Equal([]byte(childText(sig, "Value")), []byte(want)) {
		return errors.New("wsse: body signature mismatch")
	}

	// Replay protection: a (user, nonce) pair may be used once per window.
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.seen == nil {
		v.seen = make(map[string]time.Time)
	}
	key := username + "|" + nonceB64
	cutoff := now().Add(-maxAge)
	for k, t := range v.seen {
		if t.Before(cutoff) {
			delete(v.seen, k)
		}
	}
	if _, replay := v.seen[key]; replay {
		return errors.New("wsse: replayed nonce")
	}
	v.seen[key] = now()
	return nil
}

func childText(el *xmldom.Element, local string) string {
	c := el.Child(NS, local)
	if c == nil {
		return ""
	}
	return c.Text()
}
