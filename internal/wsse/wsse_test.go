package wsse

import (
	"strings"
	"testing"
	"time"

	"repro/internal/xmldom"
)

var secret = []byte("shared-secret")

func newSigner() *Signer {
	return &Signer{Username: "alice", Secret: secret}
}

func newVerifier() *Verifier {
	return &Verifier{Secrets: map[string][]byte{"alice": secret}}
}

// signAndReparse builds headers for a body and round-trips them through
// serialization, as the envelope codec would.
func signAndReparse(t *testing.T, s *Signer, body []byte) *xmldom.Element {
	t.Helper()
	blocks, err := s.MakeHeaders(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 {
		t.Fatalf("got %d header blocks", len(blocks))
	}
	reparsed, err := xmldom.ParseString(blocks[0].String())
	if err != nil {
		t.Fatal(err)
	}
	return reparsed
}

func TestSignVerifyRoundTrip(t *testing.T) {
	body := []byte(`<Echo xmlns="urn:spi:Echo"><m>x</m></Echo>`)
	block := signAndReparse(t, newSigner(), body)
	if err := newVerifier().ProcessHeader(block, body); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestTamperedBodyRejected(t *testing.T) {
	body := []byte(`<Echo><m>x</m></Echo>`)
	block := signAndReparse(t, newSigner(), body)
	err := newVerifier().ProcessHeader(block, []byte(`<Echo><m>TAMPERED</m></Echo>`))
	if err == nil || !strings.Contains(err.Error(), "signature mismatch") {
		t.Errorf("err = %v", err)
	}
}

func TestUnknownUserRejected(t *testing.T) {
	block := signAndReparse(t, &Signer{Username: "mallory", Secret: secret}, []byte("b"))
	if err := newVerifier().ProcessHeader(block, []byte("b")); err == nil {
		t.Error("unknown user accepted")
	}
}

func TestWrongSecretRejected(t *testing.T) {
	block := signAndReparse(t, &Signer{Username: "alice", Secret: []byte("wrong")}, []byte("b"))
	err := newVerifier().ProcessHeader(block, []byte("b"))
	if err == nil || !strings.Contains(err.Error(), "digest") {
		t.Errorf("err = %v", err)
	}
}

func TestExpiredTokenRejected(t *testing.T) {
	old := time.Now().Add(-time.Hour)
	s := newSigner()
	s.Now = func() time.Time { return old }
	block := signAndReparse(t, s, []byte("b"))
	err := newVerifier().ProcessHeader(block, []byte("b"))
	if err == nil || !strings.Contains(err.Error(), "expired") {
		t.Errorf("err = %v", err)
	}
}

func TestReplayRejected(t *testing.T) {
	body := []byte("b")
	block := signAndReparse(t, newSigner(), body)
	v := newVerifier()
	if err := v.ProcessHeader(block, body); err != nil {
		t.Fatal(err)
	}
	err := v.ProcessHeader(block, body)
	if err == nil || !strings.Contains(err.Error(), "replay") {
		t.Errorf("err = %v", err)
	}
}

func TestNoncesDiffer(t *testing.T) {
	s := newSigner()
	b1, _ := s.MakeHeaders([]byte("b"))
	b2, _ := s.MakeHeaders([]byte("b"))
	n1 := b1[0].Child(NS, "UsernameToken").Child(NS, "Nonce").Text()
	n2 := b2[0].Child(NS, "UsernameToken").Child(NS, "Nonce").Text()
	if n1 == n2 {
		t.Error("two headers share a nonce")
	}
}

func TestMustUnderstandFlag(t *testing.T) {
	s := newSigner()
	s.MustUnderstand = true
	blocks, err := s.MakeHeaders([]byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(blocks[0].String(), `mustUnderstand="1"`) {
		t.Errorf("header = %s", blocks[0])
	}
}

func TestIncompleteHeaderRejected(t *testing.T) {
	cases := []string{
		`<wsse:Security xmlns:wsse="` + NS + `"/>`,
		`<wsse:Security xmlns:wsse="` + NS + `"><wsse:UsernameToken><wsse:Username>alice</wsse:Username></wsse:UsernameToken></wsse:Security>`,
	}
	v := newVerifier()
	for _, src := range cases {
		el, err := xmldom.ParseString(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := v.ProcessHeader(el, []byte("b")); err == nil {
			t.Errorf("incomplete header accepted: %s", src)
		}
	}
}

func TestSignerValidation(t *testing.T) {
	s := &Signer{}
	if _, err := s.MakeHeaders([]byte("b")); err == nil {
		t.Error("empty signer accepted")
	}
}

func TestHeaderNameContract(t *testing.T) {
	ns, local := newVerifier().HeaderName()
	if ns != NS || local != ElemSecurity {
		t.Errorf("HeaderName = %q %q", ns, local)
	}
}

func TestHeaderSizeIsSubstantial(t *testing.T) {
	// The experiment's premise: the security header adds a few hundred
	// bytes of per-message overhead.
	blocks, err := newSigner().MakeHeaders([]byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	size := len(blocks[0].String())
	if size < 300 {
		t.Errorf("security header only %d bytes; experiment premise needs a substantial header", size)
	}
}
