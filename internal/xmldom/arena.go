package xmldom

import (
	"io"
	"sync"

	"repro/internal/xmltext"
)

// Arena is a per-request slab allocator for DOM nodes. One decoded
// envelope's elements, text nodes, attribute storage and child slices all
// come from a handful of contiguous slabs instead of hundreds of
// individual heap objects; after the request is assembled the whole arena
// is recycled with ReleaseArena and the next envelope reuses the memory.
//
// Lifecycle contract: every node allocated from an arena is owned by it.
// Nothing reachable from the parsed tree may be retained past
// ReleaseArena — callers that need longer-lived data copy it out (decoded
// parameter values already are copies; header blocks are cloned by the
// server before they cross into application-stage workers). Release zeroes
// the used slab regions, so a violated contract shows up as zeroed or
// freshly-overwritten data, never as another request's values.
//
// A nil *Arena is valid everywhere and falls back to ordinary heap
// allocation, so tree-building code can be written once.
type Arena struct {
	elems []Element
	texts []Text
	attrs []xmltext.Attr
	kids  []Node

	// retired slabs, cleared and dropped on Reset; present only while a
	// single request outgrows the current slab sizes.
	fullElems [][]Element
	fullTexts [][]Text
	fullAttrs [][]xmltext.Attr
	fullKids  [][]Node
}

const (
	arenaMinChunk = 64
	arenaMaxChunk = 16384
	// arenaChildCap is the per-element child-slice capacity carved from
	// the node slab. Elements that outgrow it (Body with many entries)
	// spill to the heap with ordinary append growth.
	arenaChildCap = 2
)

// grow returns the capacity for the next slab of a kind whose current slab
// holds n: slabs double until arenaMaxChunk so steady state is one slab.
func grow(n int) int {
	switch {
	case n == 0:
		return arenaMinChunk
	case n >= arenaMaxChunk:
		return arenaMaxChunk
	default:
		return 2 * n
	}
}

// NewElement allocates an element with the given name from the arena.
func (a *Arena) NewElement(name xmltext.Name) *Element {
	if a == nil {
		return &Element{Name: name}
	}
	if len(a.elems) == cap(a.elems) {
		if cap(a.elems) > 0 {
			a.fullElems = append(a.fullElems, a.elems)
		}
		a.elems = make([]Element, 0, grow(cap(a.elems)))
	}
	a.elems = append(a.elems, Element{Name: name})
	el := &a.elems[len(a.elems)-1]
	el.Children = a.childSlice()
	return el
}

// NewText allocates a text node from the arena.
func (a *Arena) NewText(data string) *Text {
	if a == nil {
		return &Text{Data: data}
	}
	if len(a.texts) == cap(a.texts) {
		if cap(a.texts) > 0 {
			a.fullTexts = append(a.fullTexts, a.texts)
		}
		a.texts = make([]Text, 0, grow(cap(a.texts)))
	}
	a.texts = append(a.texts, Text{Data: data})
	return &a.texts[len(a.texts)-1]
}

// CopyAttrs copies a token's attributes into arena-backed storage and
// returns the copy. The result is capacity-clipped, so a later SetAttr
// reallocates to the heap instead of scribbling on a slab neighbour.
func (a *Arena) CopyAttrs(src []xmltext.Attr) []xmltext.Attr {
	n := len(src)
	if n == 0 {
		return nil
	}
	if a == nil {
		return append([]xmltext.Attr(nil), src...)
	}
	if cap(a.attrs)-len(a.attrs) < n {
		if cap(a.attrs) > 0 {
			a.fullAttrs = append(a.fullAttrs, a.attrs)
		}
		c := grow(cap(a.attrs))
		for c < n {
			c = grow(c)
		}
		a.attrs = make([]xmltext.Attr, 0, c)
	}
	start := len(a.attrs)
	a.attrs = a.attrs[:start+n]
	dst := a.attrs[start : start+n : start+n]
	copy(dst, src)
	return dst
}

// childSlice carves an empty, capacity-clipped child slice from the node
// slab. Appending past arenaChildCap migrates the slice to the heap.
func (a *Arena) childSlice() []Node {
	if a == nil {
		return nil
	}
	if cap(a.kids)-len(a.kids) < arenaChildCap {
		if cap(a.kids) > 0 {
			a.fullKids = append(a.fullKids, a.kids)
		}
		a.kids = make([]Node, 0, grow(cap(a.kids)))
	}
	start := len(a.kids)
	a.kids = a.kids[:start+arenaChildCap]
	return a.kids[start:start:(start + arenaChildCap)]
}

// Reset recycles the arena: every used slab region is zeroed (dropping the
// string and pointer references it held, so request N's values are
// unreachable from request N+1 even through a wrongly-retained node
// pointer) and the largest slab of each kind is kept for reuse.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	clear(a.elems)
	a.elems = a.elems[:0]
	clear(a.texts)
	a.texts = a.texts[:0]
	clear(a.attrs)
	a.attrs = a.attrs[:0]
	clear(a.kids)
	a.kids = a.kids[:0]
	for _, s := range a.fullElems {
		clear(s)
	}
	a.fullElems = nil
	for _, s := range a.fullTexts {
		clear(s)
	}
	a.fullTexts = nil
	for _, s := range a.fullAttrs {
		clear(s)
	}
	a.fullAttrs = nil
	for _, s := range a.fullKids {
		clear(s)
	}
	a.fullKids = nil
}

var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

// AcquireArena returns a recycled (or fresh) arena from the process pool.
func AcquireArena() *Arena {
	return arenaPool.Get().(*Arena)
}

// ReleaseArena resets the arena and returns it to the pool. The caller
// must not touch the arena or any node allocated from it afterwards.
func ReleaseArena(a *Arena) {
	if a == nil {
		return
	}
	a.Reset()
	arenaPool.Put(a)
}

// StartElementNode builds the element node for a start token, copying the
// token's attributes into arena storage and attaching it to parent (nil
// for a root).
func StartElementNode(a *Arena, tok *xmltext.Token, parent *Element) *Element {
	el := a.NewElement(tok.Name)
	el.Attrs = a.CopyAttrs(tok.Attrs)
	if parent != nil {
		parent.AddChild(el)
	}
	return el
}

// AppendText attaches one text run to el, merging with a preceding text
// node (CDATA adjacent to character data arrives as separate tokens).
// Short all-whitespace runs — indentation, the dominant text content of
// pretty-printed envelopes — are interned instead of allocated. Streaming
// consumers (soap.StreamDecoder) use it to mirror ParseInArena's text
// handling exactly.
func AppendText(a *Arena, el *Element, raw []byte) {
	if n := len(el.Children); n > 0 {
		if t, ok := el.Children[n-1].(*Text); ok {
			t.Data += string(raw)
			return
		}
	}
	var s string
	if len(raw) <= 32 && xmltext.IsWhitespace(raw) {
		s = xmltext.Intern(raw)
	} else {
		s = string(raw)
	}
	el.AddChild(a.NewText(s))
}

// CompleteSubtree consumes tokens until el's end tag, attaching the whole
// subtree beneath it. The tokenizer must be positioned just after el's
// start token; a self-closing start works too, because its synthetic end
// token is still pending and returns immediately.
func CompleteSubtree(tk *xmltext.Tokenizer, a *Arena, el *Element) error {
	depth := 1
	cur := el
	for {
		tok, err := tk.Next()
		if err != nil {
			return err
		}
		switch tok.Kind {
		case xmltext.KindStartElement:
			// Self-closing elements descend too: the tokenizer follows them
			// with a synthetic end token that pops right back.
			cur = StartElementNode(a, &tok, cur)
			depth++
		case xmltext.KindEndElement:
			depth--
			if depth == 0 {
				return nil
			}
			cur = cur.Parent
		case xmltext.KindText:
			AppendText(a, cur, tk.TokenBytes())
		case xmltext.KindComment:
			cur.AddChild(&Comment{Data: tok.Text})
		case xmltext.KindProcInst:
			// Not part of the model.
		}
	}
}

// ParseInArena reads one XML document from r, allocating the tree from the
// arena (heap when a is nil, making this equivalent to Parse). The
// returned tree follows the arena lifecycle contract.
func ParseInArena(r io.Reader, a *Arena) (*Element, error) {
	tk := xmltext.NewTokenizer(r)
	tk.SetRawText(true)
	tk.SetReuseTokenAttrs(true)
	return parseDocument(tk, a)
}

// ParseBytesInArena is ParseInArena over an in-memory document, run on a
// pooled tokenizer: repeated decodes reuse one read buffer instead of
// allocating a reader and tokenizer per document. The returned tree copies
// everything it keeps (names are interned, text and attribute values are
// materialized), so it never aliases the tokenizer or b.
func ParseBytesInArena(b []byte, a *Arena) (*Element, error) {
	tk := xmltext.AcquireTokenizer(b)
	tk.SetRawText(true)
	tk.SetReuseTokenAttrs(true)
	el, err := parseDocument(tk, a)
	xmltext.ReleaseTokenizer(tk)
	return el, err
}

// parseDocument reads a whole document from an already-configured
// tokenizer. Shared by Parse and ParseInArena.
func parseDocument(tk *xmltext.Tokenizer, a *Arena) (*Element, error) {
	var root *Element
	for {
		tok, err := tk.Next()
		if err == io.EOF {
			if root == nil {
				return nil, errEmptyDocument
			}
			return root, nil
		}
		if err != nil {
			return nil, err
		}
		if tok.Kind != xmltext.KindStartElement {
			// Comments, PIs and the XML declaration outside the root are
			// discarded, as in Parse.
			continue
		}
		root = StartElementNode(a, &tok, nil)
		// For a self-closing root the first token CompleteSubtree sees is
		// the synthetic end, so this returns immediately.
		if err := CompleteSubtree(tk, a, root); err != nil {
			return nil, err
		}
	}
}
