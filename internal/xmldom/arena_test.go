package xmldom

import (
	"fmt"
	"repro/internal/xmltext"
	"strings"
	"testing"
)

// arenaDocs is a spread of document shapes the arena parser must reproduce
// exactly as the heap parser does.
var arenaDocs = []string{
	`<a/>`,
	`<a></a>`,
	`<a x="1" y="2"><b/><c>text</c></a>`,
	`<SOAP-ENV:Envelope xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/">` +
		`<SOAP-ENV:Body><m:echo xmlns:m="urn:spi:Echo">` +
		`<data xsi:type="xsd:string" xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance">payload</data>` +
		`</m:echo></SOAP-ENV:Body></SOAP-ENV:Envelope>`,
	`<r><!-- comment --><a>mixed<b/>tail</a>  <c><![CDATA[<raw>]]></c></r>`,
	`<r>&lt;escaped &amp; entities&gt;<deep><deep><deep>x</deep></deep></deep></r>`,
	"<r>\n  <a/>\n  <b>v</b>\n</r>",
}

func TestParseInArenaMatchesParse(t *testing.T) {
	a := AcquireArena()
	defer ReleaseArena(a)
	for _, doc := range arenaDocs {
		want, err := Parse(strings.NewReader(doc))
		if err != nil {
			t.Fatalf("Parse(%s): %v", doc, err)
		}
		got, err := ParseInArena(strings.NewReader(doc), a)
		if err != nil {
			t.Fatalf("ParseInArena(%s): %v", doc, err)
		}
		if !Equal(got, want) {
			t.Errorf("tree mismatch for %s:\narena: %s\nheap:  %s", doc, got, want)
		}
		// Serialization must agree byte for byte, not just structurally.
		if gs, ws := got.String(), want.String(); gs != ws {
			t.Errorf("serialization mismatch for %s:\narena: %s\nheap:  %s", doc, gs, ws)
		}
		a.Reset()
	}
}

func TestParseInArenaErrors(t *testing.T) {
	a := AcquireArena()
	defer ReleaseArena(a)
	for _, doc := range []string{``, `   `, `<a><b></a>`, `<a>`, `<a`, `</a>`} {
		if _, err := ParseInArena(strings.NewReader(doc), a); err == nil {
			t.Errorf("ParseInArena(%q) succeeded, want error", doc)
		}
		a.Reset()
	}
}

// TestArenaRecycleNoAliasing is the leak/aliasing guarantee the pool relies
// on: after a request's arena is released and reused, none of request N's
// values are observable from request N+1 — neither in the freshly parsed
// tree nor through a node pointer wrongly retained across the release.
func TestArenaRecycleNoAliasing(t *testing.T) {
	const marker = "SECRET-REQUEST-N-VALUE"
	docN := `<env><body op="` + marker + `"><entry>` + marker + `</entry>` +
		`<entry2 attr="` + marker + `"/></body></env>`
	docN1 := `<env><body op="other"><entry>clean-value</entry><entry2 attr="x"/></body></env>`

	a := AcquireArena()
	rootN, err := ParseInArena(strings.NewReader(docN), a)
	if err != nil {
		t.Fatal(err)
	}
	// Wrongly retain nodes past the release, as a buggy handler would.
	leakedEl := rootN.Child("", "body")
	leakedText := leakedEl.Child("", "entry").Children[0].(*Text)

	ReleaseArena(a)
	a2 := AcquireArena() // under GOMAXPROCS=1 tests this is typically the same arena
	defer ReleaseArena(a2)
	rootN1, err := ParseInArena(strings.NewReader(docN1), a2)
	if err != nil {
		t.Fatal(err)
	}

	var walk func(e *Element)
	walk = func(e *Element) {
		for _, at := range e.Attrs {
			if strings.Contains(at.Value, marker) {
				t.Errorf("request N marker leaked into N+1 attr %v", at)
			}
		}
		for _, n := range e.Children {
			switch n := n.(type) {
			case *Element:
				walk(n)
			case *Text:
				if strings.Contains(n.Data, marker) {
					t.Errorf("request N marker leaked into N+1 text %q", n.Data)
				}
			}
		}
	}
	walk(rootN1)

	// The retained pointers must not expose request N's values either: the
	// release zeroed them (they may since hold N+1's data, never N's).
	if leakedText.Data == marker {
		t.Error("retained text node still holds request N's value after release")
	}
	for _, at := range leakedEl.Attrs {
		if strings.Contains(at.Value, marker) {
			t.Error("retained element still holds request N's attribute value after release")
		}
	}
}

// TestArenaSlabSpill exercises slab growth and the capacity clip: a document
// with far more nodes than one slab holds, plus post-parse mutation that
// must not scribble over slab neighbours.
func TestArenaSlabSpill(t *testing.T) {
	var b strings.Builder
	b.WriteString(`<root>`)
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&b, `<item i="%d" j="%d"><v>%d</v><w/></item>`, i, i+1, i)
	}
	b.WriteString(`</root>`)

	a := AcquireArena()
	defer ReleaseArena(a)
	root, err := ParseInArena(strings.NewReader(b.String()), a)
	if err != nil {
		t.Fatal(err)
	}
	items := root.ChildElements()
	if len(items) != 500 {
		t.Fatalf("parsed %d items, want 500", len(items))
	}
	for i, it := range items {
		if got := it.AttrValue(xmltext.Name{Local: "i"}); got != fmt.Sprint(i) {
			t.Fatalf("item %d has i=%q", i, got)
		}
		if got := it.Child("", "v").Text(); got != fmt.Sprint(i) {
			t.Fatalf("item %d has v=%q", i, got)
		}
	}
	// Mutating one element's attrs (capacity-clipped) must not corrupt its
	// slab neighbour's attributes.
	items[10].SetAttr(xmltext.Name{Local: "k"}, "new")
	if got := items[11].AttrValue(xmltext.Name{Local: "i"}); got != "11" {
		t.Errorf("neighbour attr corrupted by SetAttr: i=%q", got)
	}
	// Same for child slices: growing one past its carve must not clobber
	// the next element's children.
	items[20].AddChild(&Text{Data: "extra1"})
	items[20].AddChild(&Text{Data: "extra2"})
	items[20].AddChild(&Text{Data: "extra3"})
	if got := items[21].Child("", "v").Text(); got != "21" {
		t.Errorf("neighbour children corrupted by AddChild: v=%q", got)
	}
	// After heavy growth Reset must return the arena to a reusable state.
	a.Reset()
	small, err := ParseInArena(strings.NewReader(`<x><y>z</y></x>`), a)
	if err != nil {
		t.Fatal(err)
	}
	if small.Child("", "y").Text() != "z" {
		t.Error("arena unusable after Reset from spilled state")
	}
}

// TestArenaParseAllocs pins the win: parsing a packed envelope into a warm
// arena should allocate an order of magnitude less than heap parsing.
func TestArenaParseAllocs(t *testing.T) {
	var b strings.Builder
	b.WriteString(`<SOAP-ENV:Envelope xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/"><SOAP-ENV:Body>`)
	for i := 0; i < 64; i++ {
		b.WriteString(`<m:echo xmlns:m="urn:spi:Echo"><data xsi:type="xsd:string" xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance">payload</data></m:echo>`)
	}
	b.WriteString(`</SOAP-ENV:Body></SOAP-ENV:Envelope>`)
	doc := b.String()

	a := AcquireArena()
	defer ReleaseArena(a)
	// Warm the slabs and the intern table.
	if _, err := ParseInArena(strings.NewReader(doc), a); err != nil {
		t.Fatal(err)
	}
	a.Reset()

	arenaAllocs := testing.AllocsPerRun(10, func() {
		if _, err := ParseInArena(strings.NewReader(doc), a); err != nil {
			t.Fatal(err)
		}
		a.Reset()
	})
	heapAllocs := testing.AllocsPerRun(10, func() {
		if _, err := Parse(strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs/parse: arena=%.0f heap=%.0f", arenaAllocs, heapAllocs)
	if arenaAllocs > heapAllocs/4 {
		t.Errorf("arena parse allocates too much: %.0f vs heap %.0f", arenaAllocs, heapAllocs)
	}
}
