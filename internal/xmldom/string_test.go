package xmldom

import (
	"strings"
	"testing"

	"repro/internal/xmltext"
)

func buildPackedTree(entries int) *Element {
	root := NewElement(xmltext.Name{Prefix: "spi", Local: "Parallel_Response"})
	root.DeclareNamespace("spi", "http://spi.ict.ac.cn/pack")
	for i := 0; i < entries; i++ {
		entry := root.AddElement(xmltext.Name{Prefix: "m", Local: "echoResponse"})
		entry.DeclareNamespace("m", "urn:spi:Echo")
		entry.SetAttr(xmltext.Name{Prefix: "spi", Local: "id"}, "1")
		data := entry.AddElement(xmltext.Name{Local: "data"})
		data.SetAttr(xmltext.Name{Prefix: "xsi", Local: "type"}, "xsd:string")
		data.SetText("payload with <specials> & \"quotes\"")
	}
	return root
}

// TestStringMatchesSerialize pins the sized String() path byte-identical
// to the streaming Serialize path.
func TestStringMatchesSerialize(t *testing.T) {
	trees := []*Element{
		NewElement(xmltext.Name{Local: "empty"}),
		buildPackedTree(1),
		buildPackedTree(16),
	}
	withComment := NewElement(xmltext.Name{Local: "a"})
	withComment.AddChild(&Comment{Data: " note "})
	withComment.AddChild(&Text{Data: ""})
	trees = append(trees, withComment)

	for _, tree := range trees {
		var b strings.Builder
		if err := tree.Serialize(&b); err != nil {
			t.Fatal(err)
		}
		if got := tree.String(); got != b.String() {
			t.Fatalf("String() diverged from Serialize:\n%q\nvs\n%q", got, b.String())
		}
	}
}

func TestSerializedLenExact(t *testing.T) {
	trees := []*Element{
		NewElement(xmltext.Name{Local: "empty"}),
		buildPackedTree(4),
		buildPackedTree(64),
	}
	mixed := NewElement(xmltext.Name{Local: "mixed"})
	mixed.AddChild(&Text{Data: "a<b&c\r"})
	mixed.AddChild(&Comment{Data: "c"})
	mixed.AddChild(&Text{Data: "\xffbad"})
	mixed.SetAttr(xmltext.Name{Local: "q"}, "v\"w\tx\ny")
	trees = append(trees, mixed)

	for _, tree := range trees {
		got := tree.SerializedLen()
		want := len(tree.String())
		if got != want {
			t.Fatalf("SerializedLen=%d, actual serialization is %d bytes: %q",
				got, want, tree.String())
		}
	}
}

func TestStringErrorPreserved(t *testing.T) {
	bad := NewElement(xmltext.Name{Local: "a"})
	bad.AddChild(&Comment{Data: "a--b"})
	got := bad.String()
	if !strings.HasPrefix(got, "<!ERROR ") || !strings.Contains(got, "comment contains") {
		t.Fatalf("error rendering changed: %q", got)
	}
}

func BenchmarkElementString(b *testing.B) {
	tree := buildPackedTree(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s := tree.String(); len(s) == 0 {
			b.Fatal("empty serialization")
		}
	}
}
