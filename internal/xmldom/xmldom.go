// Package xmldom provides a small document object model on top of the
// xmltext token stream.
//
// The SOAP layers use it to build and inspect envelopes: elements carry
// resolved namespace URIs, children keep document order, and serialization
// reproduces a document that parses back to an equivalent tree. The model is
// intentionally minimal — no DTDs, no entity customization — matching what
// SOAP 1.1 traffic requires.
package xmldom

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/xmltext"
)

// Standard namespace URIs used throughout the stack.
const (
	// NSXMLNS is the reserved namespace of xmlns declarations themselves.
	NSXMLNS = "http://www.w3.org/2000/xmlns/"
	// NSXML is the reserved namespace bound to the "xml" prefix.
	NSXML = "http://www.w3.org/XML/1998/namespace"
)

// Node is one node of the tree: *Element, *Text or *Comment.
type Node interface {
	node()
	// writeTo streams the node into an xmltext.Writer.
	writeTo(w *xmltext.Writer)
	// appendTo emits the node into an xmltext.Emitter (the append-based
	// encode path); byte output matches writeTo on a compact Writer.
	appendTo(e *xmltext.Emitter)
}

// Text is a character-data node.
type Text struct {
	Data string
}

func (*Text) node() {}

func (t *Text) writeTo(w *xmltext.Writer) { w.Text(t.Data) }

func (t *Text) appendTo(e *xmltext.Emitter) { e.Text(t.Data) }

// Comment is a comment node.
type Comment struct {
	Data string
}

func (*Comment) node() {}

func (c *Comment) writeTo(w *xmltext.Writer) { w.Comment(c.Data) }

func (c *Comment) appendTo(e *xmltext.Emitter) { e.Comment(c.Data) }

// Element is an XML element. Namespace declarations (xmlns / xmlns:p
// attributes) are kept in Attrs verbatim; prefix resolution walks the
// parent chain, so subtrees can be moved between documents as long as the
// needed declarations move with them.
type Element struct {
	Name     xmltext.Name
	Attrs    []xmltext.Attr
	Children []Node
	Parent   *Element
}

func (*Element) node() {}

// NewElement returns an element with the given prefixed name.
func NewElement(name xmltext.Name) *Element {
	return &Element{Name: name}
}

// AddChild appends a child node. If the node is an element its Parent is
// set to e.
func (e *Element) AddChild(n Node) {
	if c, ok := n.(*Element); ok {
		c.Parent = e
	}
	e.Children = append(e.Children, n)
}

// AddElement creates an element with the given name, appends it and returns
// it, enabling fluent tree construction.
func (e *Element) AddElement(name xmltext.Name) *Element {
	c := NewElement(name)
	e.AddChild(c)
	return c
}

// SetAttr sets (or replaces) an attribute.
func (e *Element) SetAttr(name xmltext.Name, value string) {
	for i := range e.Attrs {
		if e.Attrs[i].Name == name {
			e.Attrs[i].Value = value
			return
		}
	}
	e.Attrs = append(e.Attrs, xmltext.Attr{Name: name, Value: value})
}

// Attr returns the value of the attribute with the given prefixed name.
func (e *Element) Attr(name xmltext.Name) (string, bool) {
	for _, a := range e.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrValue is Attr with a "" default, for optional attributes.
func (e *Element) AttrValue(name xmltext.Name) string {
	v, _ := e.Attr(name)
	return v
}

// DeclareNamespace adds an xmlns declaration binding prefix to uri on this
// element. An empty prefix declares the default namespace.
func (e *Element) DeclareNamespace(prefix, uri string) {
	if prefix == "" {
		e.SetAttr(xmltext.Name{Local: "xmlns"}, uri)
		return
	}
	e.SetAttr(xmltext.Name{Prefix: "xmlns", Local: prefix}, uri)
}

// ResolvePrefix resolves a namespace prefix to a URI by walking this element
// and its ancestors. The empty prefix resolves the default namespace. The
// reserved prefixes "xml" and "xmlns" resolve to their fixed URIs.
func (e *Element) ResolvePrefix(prefix string) (string, bool) {
	switch prefix {
	case "xml":
		return NSXML, true
	case "xmlns":
		return NSXMLNS, true
	}
	for el := e; el != nil; el = el.Parent {
		for _, a := range el.Attrs {
			if prefix == "" {
				if a.Name.Prefix == "" && a.Name.Local == "xmlns" {
					return a.Value, a.Value != ""
				}
			} else if a.Name.Prefix == "xmlns" && a.Name.Local == prefix {
				return a.Value, true
			}
		}
	}
	return "", prefix == "" // unbound default namespace means "no namespace"
}

// Namespace returns the resolved namespace URI of the element itself.
func (e *Element) Namespace() string {
	uri, _ := e.ResolvePrefix(e.Name.Prefix)
	return uri
}

// Is reports whether the element has the given namespace URI and local name.
func (e *Element) Is(ns, local string) bool {
	return e.Name.Local == local && e.Namespace() == ns
}

// ChildElements returns the element children, in document order.
func (e *Element) ChildElements() []*Element {
	var out []*Element
	for _, n := range e.Children {
		if c, ok := n.(*Element); ok {
			out = append(out, c)
		}
	}
	return out
}

// Child returns the first child element with the given namespace URI and
// local name, or nil. An empty ns matches any namespace.
func (e *Element) Child(ns, local string) *Element {
	for _, n := range e.Children {
		c, ok := n.(*Element)
		if !ok {
			continue
		}
		if c.Name.Local == local && (ns == "" || c.Namespace() == ns) {
			return c
		}
	}
	return nil
}

// ChildrenNamed returns all child elements with the given namespace URI and
// local name. An empty ns matches any namespace.
func (e *Element) ChildrenNamed(ns, local string) []*Element {
	var out []*Element
	for _, n := range e.Children {
		c, ok := n.(*Element)
		if !ok {
			continue
		}
		if c.Name.Local == local && (ns == "" || c.Namespace() == ns) {
			out = append(out, c)
		}
	}
	return out
}

// Text returns the concatenation of the element's direct text children.
func (e *Element) Text() string {
	// A decoded leaf almost always holds exactly one text child; return its
	// data without going through a builder (and its heap copy).
	if len(e.Children) == 1 {
		if t, ok := e.Children[0].(*Text); ok {
			return t.Data
		}
	}
	var b strings.Builder
	for _, n := range e.Children {
		if t, ok := n.(*Text); ok {
			b.WriteString(t.Data)
		}
	}
	return b.String()
}

// SetText replaces the element's children with a single text node.
func (e *Element) SetText(s string) {
	e.Children = e.Children[:0]
	e.AddChild(&Text{Data: s})
}

// Clone returns a deep copy of the subtree rooted at e. The clone's Parent
// is nil; namespace declarations inherited from ancestors of e are copied
// onto the clone so resolution keeps working when the subtree is re-homed.
func (e *Element) Clone() *Element {
	c := e.cloneShallow(nil)
	// Preserve inherited namespace bindings that the subtree may rely on.
	seen := map[string]bool{}
	for _, a := range c.Attrs {
		if a.Name.Prefix == "xmlns" {
			seen[a.Name.Local] = true
		} else if a.Name.Prefix == "" && a.Name.Local == "xmlns" {
			seen[""] = true
		}
	}
	for anc := e.Parent; anc != nil; anc = anc.Parent {
		for _, a := range anc.Attrs {
			switch {
			case a.Name.Prefix == "xmlns" && !seen[a.Name.Local]:
				seen[a.Name.Local] = true
				c.Attrs = append(c.Attrs, a)
			case a.Name.Prefix == "" && a.Name.Local == "xmlns" && !seen[""]:
				seen[""] = true
				c.Attrs = append(c.Attrs, a)
			}
		}
	}
	return c
}

func (e *Element) cloneShallow(parent *Element) *Element {
	c := &Element{
		Name:   e.Name,
		Attrs:  append([]xmltext.Attr(nil), e.Attrs...),
		Parent: parent,
	}
	for _, n := range e.Children {
		switch n := n.(type) {
		case *Element:
			c.Children = append(c.Children, n.cloneShallow(c))
		case *Text:
			c.Children = append(c.Children, &Text{Data: n.Data})
		case *Comment:
			c.Children = append(c.Children, &Comment{Data: n.Data})
		}
	}
	return c
}

// CloneInArena returns a deep copy of the subtree rooted at e with every
// node allocated from a (heap when a is nil). Unlike Clone it copies the
// subtree verbatim — no inherited namespace declarations are pulled from
// ancestors — so it suits callers that cloned the source *after* it was
// attached (any bindings it needs are already baked into its own attrs) and
// will attach the copy into a live document themselves. The copy's Parent
// is nil. The attribute and text strings are shared with the source, which
// must therefore be immutable for the life of the copy.
func (e *Element) CloneInArena(a *Arena) *Element {
	c := a.NewElement(e.Name)
	c.Attrs = a.CopyAttrs(e.Attrs)
	for _, n := range e.Children {
		switch n := n.(type) {
		case *Element:
			c.AddChild(n.CloneInArena(a))
		case *Text:
			c.AddChild(a.NewText(n.Data))
		case *Comment:
			c.AddChild(&Comment{Data: n.Data})
		}
	}
	return c
}

func (e *Element) writeTo(w *xmltext.Writer) {
	w.StartElement(e.Name, e.Attrs...)
	for _, n := range e.Children {
		n.writeTo(w)
	}
	w.EndElement()
}

func (e *Element) appendTo(em *xmltext.Emitter) {
	em.Start(e.Name)
	for _, a := range e.Attrs {
		em.Attr(a.Name, a.Value)
	}
	for _, n := range e.Children {
		n.appendTo(em)
	}
	em.End()
}

// AppendTo emits the subtree rooted at e into em, byte-identical to
// Serialize on the same tree.
func (e *Element) AppendTo(em *xmltext.Emitter) { e.appendTo(em) }

// AppendNode emits any node into em — the package-external entry point for
// streaming mixed child lists (elements, text, comments) without a DOM
// type switch at each call site.
func AppendNode(n Node, em *xmltext.Emitter) { n.appendTo(em) }

// Serialize writes the subtree rooted at e as a complete document
// (without an XML declaration) to w.
func (e *Element) Serialize(w io.Writer) error {
	xw := xmltext.NewWriter(w)
	e.writeTo(xw)
	return xw.Flush()
}

// WriteDocument serializes e as a full document with the XML declaration.
func (e *Element) WriteDocument(w io.Writer) error {
	xw := xmltext.NewWriter(w)
	xw.Declaration()
	e.writeTo(xw)
	return xw.Flush()
}

// WriteIndented serializes e with indentation, for human-facing output.
func (e *Element) WriteIndented(w io.Writer, indent string) error {
	xw := xmltext.NewIndentWriter(w, indent)
	e.writeTo(xw)
	return xw.Flush()
}

// SerializedLen returns the exact byte length of the compact
// serialization of the subtree rooted at e (Serialize / String output),
// accounting for escaping and self-closing tags, so buffers can be sized
// in one pass instead of growing repeatedly.
func (e *Element) SerializedLen() int {
	nameLen := len(e.Name.Local)
	if e.Name.Prefix != "" {
		nameLen += len(e.Name.Prefix) + 1
	}
	n := 1 + nameLen // "<name"
	for _, a := range e.Attrs {
		n += 1 + len(a.Name.Local) // " name"
		if a.Name.Prefix != "" {
			n += len(a.Name.Prefix) + 1
		}
		n += 2 + xmltext.EscapedAttrLen(a.Value) + 1 // `="value"`
	}
	if len(e.Children) == 0 {
		return n + 2 // "/>"
	}
	n += 1 // ">"
	for _, c := range e.Children {
		switch c := c.(type) {
		case *Element:
			n += c.SerializedLen()
		case *Text:
			n += xmltext.EscapedTextLen(c.Data)
		case *Comment:
			n += len("<!--") + len(c.Data) + len("-->")
		}
	}
	return n + 2 + nameLen + 1 // "</name>"
}

// String returns the compact serialization, for logs and tests. The buffer
// is sized exactly via SerializedLen, so large packed trees serialize with
// a single allocation for the result string.
func (e *Element) String() string {
	em := xmltext.AcquireEmitter()
	defer xmltext.ReleaseEmitter(em)
	em.Grow(e.SerializedLen())
	e.appendTo(em)
	if err := em.Finish(); err != nil {
		return fmt.Sprintf("<!ERROR %v>", err)
	}
	return string(em.Bytes())
}

var errEmptyDocument = fmt.Errorf("xmldom: empty document")

// Parse reads one XML document from r and returns its root element.
// Comments are preserved inside the tree; the XML declaration and anything
// else outside the root element are discarded. The tree is heap-allocated
// and unrestricted in lifetime; the decode hot path uses ParseInArena
// instead.
func Parse(r io.Reader) (*Element, error) {
	return ParseInArena(r, nil)
}

// ParseString is Parse over a string, a convenience for tests.
func ParseString(s string) (*Element, error) {
	return Parse(strings.NewReader(s))
}

// Equal reports whether two subtrees are structurally equal: same names,
// same attributes (order-insensitive), same children (order-sensitive,
// ignoring comments and whitespace-only text).
func Equal(a, b *Element) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Name != b.Name {
		return false
	}
	if !attrsEqual(a.Attrs, b.Attrs) {
		return false
	}
	ac, bc := significantChildren(a), significantChildren(b)
	if len(ac) != len(bc) {
		return false
	}
	for i := range ac {
		switch an := ac[i].(type) {
		case *Element:
			bn, ok := bc[i].(*Element)
			if !ok || !Equal(an, bn) {
				return false
			}
		case *Text:
			bn, ok := bc[i].(*Text)
			if !ok || an.Data != bn.Data {
				return false
			}
		}
	}
	return true
}

func attrsEqual(a, b []xmltext.Attr) bool {
	if len(a) != len(b) {
		return false
	}
	for _, aa := range a {
		found := false
		for _, bb := range b {
			if aa == bb {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func significantChildren(e *Element) []Node {
	var out []Node
	for _, n := range e.Children {
		switch n := n.(type) {
		case *Comment:
			continue
		case *Text:
			if strings.TrimSpace(n.Data) == "" {
				continue
			}
			out = append(out, n)
		default:
			out = append(out, n)
		}
	}
	return out
}
