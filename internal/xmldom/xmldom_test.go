package xmldom

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xmltext"
)

func mustParse(t *testing.T, s string) *Element {
	t.Helper()
	el, err := ParseString(s)
	if err != nil {
		t.Fatalf("ParseString(%q): %v", s, err)
	}
	return el
}

func TestParseSimpleTree(t *testing.T) {
	root := mustParse(t, `<a x="1"><b>hello</b><c/></a>`)
	if root.Name.Local != "a" {
		t.Fatalf("root = %v", root.Name)
	}
	if v := root.AttrValue(xmltext.Name{Local: "x"}); v != "1" {
		t.Errorf("attr x = %q", v)
	}
	kids := root.ChildElements()
	if len(kids) != 2 {
		t.Fatalf("got %d child elements", len(kids))
	}
	if kids[0].Text() != "hello" {
		t.Errorf("b text = %q", kids[0].Text())
	}
	if kids[0].Parent != root || kids[1].Parent != root {
		t.Error("parents not set")
	}
}

func TestNamespaceResolution(t *testing.T) {
	doc := `<e:Envelope xmlns:e="urn:env" xmlns="urn:default">
		<child><e:deep/></child>
		<other xmlns="urn:other"><inner/></other>
	</e:Envelope>`
	root := mustParse(t, doc)
	if ns := root.Namespace(); ns != "urn:env" {
		t.Errorf("root ns = %q", ns)
	}
	child := root.Child("", "child")
	if ns := child.Namespace(); ns != "urn:default" {
		t.Errorf("child ns = %q", ns)
	}
	deep := child.Child("", "deep")
	if ns := deep.Namespace(); ns != "urn:env" {
		t.Errorf("deep ns = %q", ns)
	}
	inner := root.Child("", "other").Child("", "inner")
	if ns := inner.Namespace(); ns != "urn:other" {
		t.Errorf("inner ns = %q", ns)
	}
	if !root.Is("urn:env", "Envelope") {
		t.Error("Is(urn:env, Envelope) = false")
	}
	if _, ok := deep.ResolvePrefix("undeclared"); ok {
		t.Error("undeclared prefix resolved")
	}
	if uri, ok := deep.ResolvePrefix("xml"); !ok || uri != NSXML {
		t.Errorf("xml prefix = %q, %v", uri, ok)
	}
}

func TestChildQueries(t *testing.T) {
	root := mustParse(t, `<r xmlns:a="urn:a"><a:x>1</a:x><x>2</x><a:x>3</a:x></r>`)
	if got := root.Child("urn:a", "x").Text(); got != "1" {
		t.Errorf("Child(urn:a, x) = %q", got)
	}
	all := root.ChildrenNamed("urn:a", "x")
	if len(all) != 2 || all[1].Text() != "3" {
		t.Errorf("ChildrenNamed = %v", all)
	}
	anyNS := root.ChildrenNamed("", "x")
	if len(anyNS) != 3 {
		t.Errorf("ChildrenNamed any ns = %d elements", len(anyNS))
	}
	if root.Child("urn:b", "x") != nil {
		t.Error("Child with wrong ns matched")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	doc := `<r xmlns:n="urn:n" a="v&amp;w"><n:c>text &lt;x&gt;</n:c><empty/><m>mixed <i>in</i> line</m></r>`
	root := mustParse(t, doc)
	out := root.String()
	root2 := mustParse(t, out)
	if !Equal(root, root2) {
		t.Errorf("round trip not equal:\n%s\n%s", doc, out)
	}
}

func TestBuildAndSerialize(t *testing.T) {
	root := NewElement(xmltext.Name{Prefix: "e", Local: "Env"})
	root.DeclareNamespace("e", "urn:env")
	body := root.AddElement(xmltext.Name{Prefix: "e", Local: "Body"})
	op := body.AddElement(xmltext.Name{Local: "GetWeather"})
	op.DeclareNamespace("", "urn:weather")
	city := op.AddElement(xmltext.Name{Local: "City"})
	city.SetText("Beijing")

	if ns := city.Namespace(); ns != "urn:weather" {
		t.Errorf("built city ns = %q", ns)
	}
	out := root.String()
	back := mustParse(t, out)
	got := back.Child("urn:env", "Body").Child("urn:weather", "GetWeather").Child("urn:weather", "City").Text()
	if got != "Beijing" {
		t.Errorf("round trip city = %q (doc %s)", got, out)
	}
}

func TestSetAttrReplaces(t *testing.T) {
	e := NewElement(xmltext.Name{Local: "a"})
	e.SetAttr(xmltext.Name{Local: "k"}, "1")
	e.SetAttr(xmltext.Name{Local: "k"}, "2")
	if len(e.Attrs) != 1 || e.Attrs[0].Value != "2" {
		t.Errorf("attrs = %v", e.Attrs)
	}
	if _, ok := e.Attr(xmltext.Name{Local: "missing"}); ok {
		t.Error("missing attr found")
	}
}

func TestSetText(t *testing.T) {
	e := mustParse(t, `<a><b/>old</a>`)
	e.SetText("new")
	if e.Text() != "new" || len(e.Children) != 1 {
		t.Errorf("after SetText: text=%q children=%d", e.Text(), len(e.Children))
	}
}

func TestCloneCarriesNamespaces(t *testing.T) {
	root := mustParse(t, `<r xmlns:n="urn:n" xmlns="urn:d"><n:c><leaf/></n:c></r>`)
	sub := root.Child("urn:n", "c")
	clone := sub.Clone()
	if clone.Parent != nil {
		t.Error("clone has a parent")
	}
	if ns := clone.Namespace(); ns != "urn:n" {
		t.Errorf("clone ns = %q", ns)
	}
	if ns := clone.Child("", "leaf").Namespace(); ns != "urn:d" {
		t.Errorf("clone leaf ns = %q", ns)
	}
	// Mutating the clone must not affect the original.
	clone.SetText("x")
	if sub.Text() == "x" {
		t.Error("clone shares children with original")
	}
}

func TestEqualSemantics(t *testing.T) {
	a := mustParse(t, `<r a="1" b="2"><c>t</c></r>`)
	b := mustParse(t, `<r b="2" a="1">
		<c>t</c><!-- note -->
	</r>`)
	if !Equal(a, b) {
		t.Error("attribute order / whitespace / comments should not matter")
	}
	c := mustParse(t, `<r a="1" b="2"><c>T</c></r>`)
	if Equal(a, c) {
		t.Error("different text compared equal")
	}
	d := mustParse(t, `<r a="1"><c>t</c></r>`)
	if Equal(a, d) {
		t.Error("different attrs compared equal")
	}
	if !Equal(nil, nil) || Equal(a, nil) {
		t.Error("nil handling wrong")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseString(`<a><b></a>`); err == nil {
		t.Error("mismatched tags accepted")
	}
	if _, err := ParseString(``); err == nil {
		t.Error("empty document accepted")
	}
}

func TestMergedTextNodes(t *testing.T) {
	root := mustParse(t, `<a>one<![CDATA[ two]]> three</a>`)
	if root.Text() != "one two three" {
		t.Errorf("merged text = %q", root.Text())
	}
	if len(root.Children) != 1 {
		t.Errorf("children = %d, want 1 merged text node", len(root.Children))
	}
}

func TestWriteDocument(t *testing.T) {
	root := mustParse(t, `<a/>`)
	var b strings.Builder
	if err := root.WriteDocument(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), `<?xml version="1.0"`) {
		t.Errorf("document = %q", b.String())
	}
}

func TestWriteIndented(t *testing.T) {
	root := mustParse(t, `<a><b><c/></b></a>`)
	var b strings.Builder
	if err := root.WriteIndented(&b, "  "); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "\n  <b>") {
		t.Errorf("indented = %q", b.String())
	}
}

func isText(n Node) bool {
	_, ok := n.(*Text)
	return ok
}

// randomTree builds a pseudo-random tree with the given rand source.
func randomTree(r *rand.Rand, depth int) *Element {
	names := []string{"alpha", "beta", "gamma", "delta"}
	e := NewElement(xmltext.Name{Local: names[r.Intn(len(names))]})
	if r.Intn(2) == 0 {
		e.SetAttr(xmltext.Name{Local: "k"}, names[r.Intn(len(names))])
	}
	n := r.Intn(4)
	for i := 0; i < n; i++ {
		if depth > 0 && r.Intn(2) == 0 {
			e.AddChild(randomTree(r, depth-1))
		} else if k := len(e.Children); k == 0 || !isText(e.Children[k-1]) {
			// Avoid adjacent text nodes: the parser merges them, which would
			// make the round-trip comparison structurally different.
			e.AddChild(&Text{Data: "txt" + names[r.Intn(len(names))]})
		}
	}
	return e
}

// Property: serialize -> parse is the identity on random trees.
func TestQuickSerializeParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := randomTree(r, 4)
		parsed, err := ParseString(tree.String())
		if err != nil {
			t.Logf("parse error: %v on %s", err, tree.String())
			return false
		}
		return Equal(tree, parsed)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
