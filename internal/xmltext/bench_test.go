package xmltext

import (
	"fmt"
	"io"
	"strings"
	"testing"
)

// buildDoc produces a SOAP-shaped document of roughly the given size.
func buildDoc(approxBytes int) string {
	var b strings.Builder
	b.WriteString(`<?xml version="1.0" encoding="UTF-8"?><Envelope xmlns="urn:bench"><Body>`)
	i := 0
	for b.Len() < approxBytes {
		fmt.Fprintf(&b, `<item id="%d" type="string">payload text %d &amp; more</item>`, i, i)
		i++
	}
	b.WriteString(`</Body></Envelope>`)
	return b.String()
}

func benchTokenize(b *testing.B, doc string) {
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tk := NewTokenizer(strings.NewReader(doc))
		for {
			_, err := tk.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTokenize measures tokenizer throughput at SOAP-typical sizes.
func BenchmarkTokenize(b *testing.B) {
	for _, size := range []int{1 << 10, 64 << 10, 1 << 20} {
		doc := buildDoc(size)
		b.Run(fmt.Sprintf("%dKB", size/1024), func(b *testing.B) {
			benchTokenize(b, doc)
		})
	}
}

// BenchmarkEscapeText measures the escaper's fast and slow paths.
func BenchmarkEscapeText(b *testing.B) {
	clean := strings.Repeat("no special characters here ", 40)
	dirty := strings.Repeat("a<b & \"c\" > d ", 40)
	b.Run("clean", func(b *testing.B) {
		b.SetBytes(int64(len(clean)))
		for i := 0; i < b.N; i++ {
			EscapeText(clean)
		}
	})
	b.Run("dirty", func(b *testing.B) {
		b.SetBytes(int64(len(dirty)))
		for i := 0; i < b.N; i++ {
			EscapeText(dirty)
		}
	})
}

// BenchmarkWriter measures serialized output throughput.
func BenchmarkWriter(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := NewWriter(io.Discard)
		w.StartElement(Name{Local: "Envelope"})
		for j := 0; j < 100; j++ {
			w.StartElement(Name{Local: "item"}, Attr{Name: Name{Local: "id"}, Value: "7"})
			w.Text("payload text & more")
			w.EndElement()
		}
		w.EndElement()
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}
