package xmltext

import (
	"fmt"
	"sync"
)

// Emitter is the append-based counterpart of Writer for the encode hot
// path: it builds a compact XML document in a single pooled []byte instead
// of streaming through a bufio.Writer, so a whole envelope can be emitted
// with zero allocations and handed to the transport as one buffer.
//
// Byte parity: for any token sequence, an Emitter produces exactly the
// bytes a compact Writer (NewWriter) would — same lazy start tags (an
// immediate End yields a self-closing tag), same escaping, same error
// conditions with the same messages. Tests pin this equivalence.
//
// Errors are sticky, as on Writer: after the first failure every method is
// a no-op and Err/Finish report the error.
type Emitter struct {
	buf    []byte
	stack  []Name
	inOpen bool
	err    error
}

// maxPooledEmitter caps the buffer capacity retained by the pool, so one
// pathological response does not pin a huge buffer forever.
const maxPooledEmitter = 1 << 20

var emitterPool = sync.Pool{
	New: func() any { return &Emitter{buf: make([]byte, 0, 4<<10)} },
}

// AcquireEmitter returns a reset Emitter from the pool. Callers must not
// retain the Emitter or any slice obtained from Bytes/Extend after
// ReleaseEmitter.
func AcquireEmitter() *Emitter {
	e := emitterPool.Get().(*Emitter)
	e.Reset()
	return e
}

// ReleaseEmitter recycles e. Oversized buffers are dropped instead of
// pooled. Releasing nil is a no-op, so release hooks can be unconditional.
func ReleaseEmitter(e *Emitter) {
	if e == nil || cap(e.buf) > maxPooledEmitter {
		return
	}
	emitterPool.Put(e)
}

// Reset clears all state for reuse, keeping the buffer's capacity.
func (e *Emitter) Reset() {
	e.buf = e.buf[:0]
	e.stack = e.stack[:0]
	e.inOpen = false
	e.err = nil
}

// Err returns the first error encountered, if any.
func (e *Emitter) Err() error { return e.err }

// Len returns the number of bytes emitted so far.
func (e *Emitter) Len() int { return len(e.buf) }

// Bytes returns the emitted document. The slice aliases the Emitter's
// internal buffer: it is invalidated by further emission, Reset, or
// ReleaseEmitter.
func (e *Emitter) Bytes() []byte { return e.buf }

// Grow ensures capacity for n more bytes, to front-load the (at most one)
// buffer growth when the output size is known.
func (e *Emitter) Grow(n int) {
	if cap(e.buf)-len(e.buf) >= n {
		return
	}
	grown := make([]byte, len(e.buf), len(e.buf)+n)
	copy(grown, e.buf)
	e.buf = grown
}

func (e *Emitter) setErr(err error) {
	if e.err == nil {
		e.err = err
	}
}

// closeOpenTag completes a pending start tag with '>'.
func (e *Emitter) closeOpenTag() {
	if e.inOpen {
		e.buf = append(e.buf, '>')
		e.inOpen = false
	}
}

// appendName appends name in prefix:local form.
func (e *Emitter) appendName(name Name) {
	if name.Prefix != "" {
		e.buf = append(e.buf, name.Prefix...)
		e.buf = append(e.buf, ':')
	}
	e.buf = append(e.buf, name.Local...)
}

// Declaration writes the standard XML 1.0 declaration. It must come first.
func (e *Emitter) Declaration() {
	if e.err != nil {
		return
	}
	if len(e.stack) > 0 || e.inOpen {
		e.setErr(fmt.Errorf("xmltext: declaration not at start of document"))
		return
	}
	e.buf = append(e.buf, `<?xml version="1.0" encoding="UTF-8"?>`...)
}

// Start opens an element. The '>' is emitted lazily so an immediately
// following End produces a self-closing tag, as on Writer.
func (e *Emitter) Start(name Name) {
	if e.err != nil {
		return
	}
	if name.Local == "" {
		e.setErr(fmt.Errorf("xmltext: empty element name"))
		return
	}
	e.closeOpenTag()
	e.stack = append(e.stack, name)
	e.inOpen = true
	if t, ok := tagTable[name]; ok {
		e.buf = append(e.buf, t.open...)
		return
	}
	e.buf = append(e.buf, '<')
	e.appendName(name)
}

// Attr appends an attribute to the element opened by the preceding Start.
// The value is escaped on write.
func (e *Emitter) Attr(name Name, value string) {
	if e.err != nil {
		return
	}
	if !e.inOpen {
		e.setErr(fmt.Errorf("xmltext: Attr(%s) outside of start tag", name))
		return
	}
	e.buf = append(e.buf, ' ')
	e.appendName(name)
	e.buf = append(e.buf, '=', '"')
	e.buf = AppendEscAttr(e.buf, value)
	e.buf = append(e.buf, '"')
}

// AttrRaw is Attr for values the caller guarantees need no escaping (e.g.
// numbers formatted into a scratch buffer); the bytes go in verbatim.
func (e *Emitter) AttrRaw(name Name, value []byte) {
	if e.err != nil {
		return
	}
	if !e.inOpen {
		e.setErr(fmt.Errorf("xmltext: Attr(%s) outside of start tag", name))
		return
	}
	e.buf = append(e.buf, ' ')
	e.appendName(name)
	e.buf = append(e.buf, '=', '"')
	e.buf = append(e.buf, value...)
	e.buf = append(e.buf, '"')
}

// End closes the most recently opened element.
func (e *Emitter) End() {
	if e.err != nil {
		return
	}
	if len(e.stack) == 0 {
		e.setErr(fmt.Errorf("xmltext: EndElement with no open element"))
		return
	}
	name := e.stack[len(e.stack)-1]
	e.stack = e.stack[:len(e.stack)-1]
	if e.inOpen {
		e.buf = append(e.buf, '/', '>')
		e.inOpen = false
		return
	}
	if t, ok := tagTable[name]; ok {
		e.buf = append(e.buf, t.close...)
		return
	}
	e.buf = append(e.buf, '<', '/')
	e.appendName(name)
	e.buf = append(e.buf, '>')
}

// Text writes escaped character data inside the current element. Like
// Writer.Text, an empty string still completes the open start tag, so
// Text("") distinguishes <a></a> from <a/>.
func (e *Emitter) Text(s string) {
	if e.err != nil {
		return
	}
	if len(e.stack) == 0 {
		e.setErr(fmt.Errorf("xmltext: text outside root element"))
		return
	}
	e.closeOpenTag()
	e.buf = AppendEscText(e.buf, s)
}

// RawText is Text without the open-element check: escaped character data
// appended wherever the buffer stands. It exists for template splicing
// (msgcache), where the element structure lives in pre-serialized segments
// the Emitter never saw, so its stack is empty by construction.
func (e *Emitter) RawText(s string) {
	if e.err != nil {
		return
	}
	e.closeOpenTag()
	e.buf = AppendEscText(e.buf, s)
}

// Raw appends pre-serialized bytes verbatim, completing any open start tag
// first. It is the splice point for body fragments emitted into a separate
// Emitter, and for numbers formatted into scratch buffers (which never
// contain escapable characters).
func (e *Emitter) Raw(b []byte) {
	if e.err != nil {
		return
	}
	e.closeOpenTag()
	e.buf = append(e.buf, b...)
}

// RawString is Raw for string payloads.
func (e *Emitter) RawString(s string) {
	if e.err != nil {
		return
	}
	e.closeOpenTag()
	e.buf = append(e.buf, s...)
}

// Extend completes any open start tag, grows the buffer by n bytes and
// returns that tail for in-place encoding (base64, time formatting). The
// slice is invalidated like Bytes. Returns nil after an error.
func (e *Emitter) Extend(n int) []byte {
	if e.err != nil {
		return nil
	}
	e.closeOpenTag()
	l := len(e.buf)
	e.buf = append(e.buf, make([]byte, n)...)
	return e.buf[l : l+n]
}

// Comment writes an XML comment. The body must not contain "--".
func (e *Emitter) Comment(s string) {
	if e.err != nil {
		return
	}
	for i := 0; i+1 < len(s); i++ {
		if s[i] == '-' && s[i+1] == '-' {
			e.setErr(fmt.Errorf("xmltext: comment contains %q", "--"))
			return
		}
	}
	e.closeOpenTag()
	e.buf = append(e.buf, "<!--"...)
	e.buf = append(e.buf, s...)
	e.buf = append(e.buf, "-->"...)
}

// Finish verifies the document is complete (every Start matched by an End)
// and returns the sticky error, mirroring Writer.Flush. The emitted bytes
// remain available via Bytes.
func (e *Emitter) Finish() error {
	if e.err == nil && (len(e.stack) > 0 || e.inOpen) {
		e.setErr(fmt.Errorf("xmltext: Flush with %d unclosed element(s)", len(e.stack)))
	}
	return e.err
}

// tagBytes holds a name's precomputed start-tag head ("<prefix:local") and
// end tag ("</prefix:local>").
type tagBytes struct {
	open  []byte
	close []byte
}

// tagTable maps the SOAP 1.1/1.2 vocabulary to precomputed tag bytes. It
// is built once at init and read-only afterwards, so lookups are safe from
// any goroutine; a map hit replaces three appends with one. Misses (e.g.
// application operation names) fall back to piecewise appends, still
// allocation-free.
var tagTable = buildTagTable()

func buildTagTable() map[Name]tagBytes {
	vocab := []string{
		// Envelope structure, both versions.
		"SOAP-ENV:Envelope", "SOAP-ENV:Header", "SOAP-ENV:Body",
		"SOAP-ENV:Fault", "env:Envelope", "env:Header", "env:Body",
		"env:Fault",
		// SOAP 1.1 fault children.
		"faultcode", "faultstring", "faultactor", "detail",
		// SOAP 1.2 fault children.
		"env:Code", "env:Value", "env:Reason", "env:Text", "env:Node",
		"env:Detail",
		// Pack extension.
		"spi:Parallel_Method", "spi:Parallel_Response",
		// Array items.
		"item",
	}
	t := make(map[Name]tagBytes, len(vocab))
	for _, s := range vocab {
		n := ParseName(s)
		t[n] = tagBytes{
			open:  []byte("<" + s),
			close: []byte("</" + s + ">"),
		}
	}
	return t
}
