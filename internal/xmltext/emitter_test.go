package xmltext

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// op is one writer instruction, applied to both Writer and Emitter so the
// parity tests drive the two implementations through identical sequences.
type emitOp struct {
	kind  string // "decl", "start", "attr", "end", "text", "comment"
	name  Name
	value string
}

func applyOps(t *testing.T, ops []emitOp) (writerOut string, writerErr error, emitterOut string, emitterErr error) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	e := AcquireEmitter()
	defer ReleaseEmitter(e)
	for _, op := range ops {
		switch op.kind {
		case "decl":
			w.Declaration()
			e.Declaration()
		case "start":
			w.StartElement(op.name)
			e.Start(op.name)
		case "attr":
			w.Attr(op.name, op.value)
			e.Attr(op.name, op.value)
		case "end":
			w.EndElement()
			e.End()
		case "text":
			w.Text(op.value)
			e.Text(op.value)
		case "comment":
			w.Comment(op.value)
			e.Comment(op.value)
		default:
			t.Fatalf("unknown op %q", op.kind)
		}
	}
	writerErr = w.Flush()
	emitterErr = e.Finish()
	return buf.String(), writerErr, string(e.Bytes()), emitterErr
}

func TestEmitterParityDocuments(t *testing.T) {
	name := func(p, l string) Name { return Name{Prefix: p, Local: l} }
	cases := []struct {
		desc string
		ops  []emitOp
	}{
		{"simple element", []emitOp{
			{kind: "start", name: name("", "root")},
			{kind: "text", value: "hello"},
			{kind: "end"},
		}},
		{"declaration and nesting", []emitOp{
			{kind: "decl"},
			{kind: "start", name: name("SOAP-ENV", "Envelope")},
			{kind: "attr", name: name("xmlns", "SOAP-ENV"), value: "http://schemas.xmlsoap.org/soap/envelope/"},
			{kind: "start", name: name("SOAP-ENV", "Body")},
			{kind: "start", name: name("m", "echo")},
			{kind: "attr", name: name("xmlns", "m"), value: "urn:spi:Echo"},
			{kind: "text", value: "payload"},
			{kind: "end"},
			{kind: "end"},
			{kind: "end"},
		}},
		{"self-closing", []emitOp{
			{kind: "start", name: name("", "a")},
			{kind: "start", name: name("", "b")},
			{kind: "attr", name: name("", "x"), value: "1"},
			{kind: "end"},
			{kind: "end"},
		}},
		{"empty text keeps explicit close tag", []emitOp{
			{kind: "start", name: name("", "a")},
			{kind: "text", value: ""},
			{kind: "end"},
		}},
		{"escaping in text and attrs", []emitOp{
			{kind: "start", name: name("", "a")},
			{kind: "attr", name: name("", "q"), value: `<&>"` + "\t\n\r"},
			{kind: "text", value: `a<b&c>d"e` + "\r\n\t"},
			{kind: "end"},
		}},
		{"invalid utf8 and control chars", []emitOp{
			{kind: "start", name: name("", "a")},
			{kind: "attr", name: name("", "q"), value: "x\xffy\x01z"},
			{kind: "text", value: "x\xffy\x01z "},
			{kind: "end"},
		}},
		{"comment", []emitOp{
			{kind: "start", name: name("", "a")},
			{kind: "comment", value: " note "},
			{kind: "end"},
		}},
		{"multibyte text", []emitOp{
			{kind: "start", name: name("", "a")},
			{kind: "text", value: "héllo wörld — 日本語"},
			{kind: "end"},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.desc, func(t *testing.T) {
			wOut, wErr, eOut, eErr := applyOps(t, tc.ops)
			if wErr != nil || eErr != nil {
				t.Fatalf("errors: writer=%v emitter=%v", wErr, eErr)
			}
			if wOut != eOut {
				t.Fatalf("output mismatch:\nwriter:  %q\nemitter: %q", wOut, eOut)
			}
		})
	}
}

func TestEmitterParityErrors(t *testing.T) {
	name := func(p, l string) Name { return Name{Prefix: p, Local: l} }
	cases := []struct {
		desc string
		ops  []emitOp
	}{
		{"empty element name", []emitOp{{kind: "start", name: Name{}}}},
		{"attr outside start tag", []emitOp{
			{kind: "start", name: name("", "a")},
			{kind: "text", value: "x"},
			{kind: "attr", name: name("", "q"), value: "1"},
		}},
		{"end with no open element", []emitOp{{kind: "end"}}},
		{"text outside root", []emitOp{{kind: "text", value: "x"}}},
		{"comment with double dash", []emitOp{
			{kind: "start", name: name("", "a")},
			{kind: "comment", value: "a--b"},
		}},
		{"unclosed element at flush", []emitOp{{kind: "start", name: name("", "a")}}},
		{"declaration mid-document", []emitOp{
			{kind: "start", name: name("", "a")},
			{kind: "decl"},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.desc, func(t *testing.T) {
			_, wErr, _, eErr := applyOps(t, tc.ops)
			if wErr == nil || eErr == nil {
				t.Fatalf("expected errors, got writer=%v emitter=%v", wErr, eErr)
			}
			if wErr.Error() != eErr.Error() {
				t.Fatalf("error mismatch:\nwriter:  %v\nemitter: %v", wErr, eErr)
			}
		})
	}
}

// TestEmitterParityRandom drives both implementations through random valid
// documents with adversarial strings.
func TestEmitterParityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	values := []string{
		"", "plain", "a<b", "x&y", `q"r`, "tab\tnl\ncr\r", "\xff\xfe",
		"\x00\x01", "ünïcødé", strings.Repeat("long", 100), "]]>", "--",
	}
	names := []Name{
		{Local: "root"}, {Prefix: "SOAP-ENV", Local: "Body"},
		{Prefix: "m", Local: "op"}, {Local: "item"}, {Prefix: "spi", Local: "Parallel_Response"},
	}
	for round := 0; round < 200; round++ {
		var ops []emitOp
		ops = append(ops, emitOp{kind: "start", name: names[rng.Intn(len(names))]})
		depth := 1
		for i := 0; i < 30 && depth > 0; i++ {
			switch rng.Intn(5) {
			case 0:
				ops = append(ops, emitOp{kind: "start", name: names[rng.Intn(len(names))]})
				depth++
			case 1:
				ops = append(ops, emitOp{kind: "attr", name: Name{Local: "a"}, value: values[rng.Intn(len(values))]})
			case 2:
				ops = append(ops, emitOp{kind: "text", value: values[rng.Intn(len(values))]})
			case 3, 4:
				ops = append(ops, emitOp{kind: "end"})
				depth--
			}
		}
		for ; depth > 0; depth-- {
			ops = append(ops, emitOp{kind: "end"})
		}
		wOut, wErr, eOut, eErr := applyOps(t, ops)
		if (wErr == nil) != (eErr == nil) {
			t.Fatalf("round %d: error divergence writer=%v emitter=%v", round, wErr, eErr)
		}
		if wErr != nil {
			if wErr.Error() != eErr.Error() {
				t.Fatalf("round %d: error mismatch %v vs %v", round, wErr, eErr)
			}
			continue
		}
		if wOut != eOut {
			t.Fatalf("round %d: output mismatch\nwriter:  %q\nemitter: %q", round, wOut, eOut)
		}
	}
}

func TestEmitterExtendAndRaw(t *testing.T) {
	e := AcquireEmitter()
	defer ReleaseEmitter(e)
	e.Start(Name{Local: "a"})
	tail := e.Extend(3)
	copy(tail, "xyz")
	e.Raw([]byte("<b/>"))
	e.RawString("<c/>")
	e.End()
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	if got, want := string(e.Bytes()), "<a>xyz<b/><c/></a>"; got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestEmitterAttrRaw(t *testing.T) {
	e := AcquireEmitter()
	defer ReleaseEmitter(e)
	e.Start(Name{Local: "a"})
	e.AttrRaw(Name{Prefix: "SOAP-ENC", Local: "arrayType"}, []byte("xsd:anyType[3]"))
	e.End()
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	if got, want := string(e.Bytes()), `<a SOAP-ENC:arrayType="xsd:anyType[3]"/>`; got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestEmitterGrow(t *testing.T) {
	e := AcquireEmitter()
	defer ReleaseEmitter(e)
	e.Start(Name{Local: "a"})
	e.Grow(1 << 16)
	if cap(e.buf)-len(e.buf) < 1<<16 {
		t.Fatalf("Grow did not reserve capacity: cap=%d len=%d", cap(e.buf), len(e.buf))
	}
	e.Text("x")
	e.End()
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	if got := string(e.Bytes()); got != "<a>x</a>" {
		t.Fatalf("got %q", got)
	}
}

// TestEmitterPoolRecycling hammers acquire/emit/release from many
// goroutines; run under -race via the race-pools make target.
func TestEmitterPoolRecycling(t *testing.T) {
	const workers = 8
	const rounds = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				e := AcquireEmitter()
				e.Declaration()
				e.Start(Name{Prefix: "SOAP-ENV", Local: "Envelope"})
				e.Start(Name{Prefix: "SOAP-ENV", Local: "Body"})
				payload := fmt.Sprintf("w%d-r%d", seed, i)
				e.Start(Name{Local: "data"})
				e.Text(payload)
				e.End()
				e.End()
				e.End()
				if err := e.Finish(); err != nil {
					t.Errorf("finish: %v", err)
				}
				want := `<?xml version="1.0" encoding="UTF-8"?><SOAP-ENV:Envelope><SOAP-ENV:Body><data>` +
					payload + `</data></SOAP-ENV:Body></SOAP-ENV:Envelope>`
				if got := string(e.Bytes()); got != want {
					t.Errorf("pooled emitter corrupted: got %q want %q", got, want)
				}
				ReleaseEmitter(e)
			}
		}(w)
	}
	wg.Wait()
}

func TestEmitterOversizedNotPooled(t *testing.T) {
	e := &Emitter{buf: make([]byte, 0, maxPooledEmitter+1)}
	ReleaseEmitter(e) // must drop, not pool
	got := AcquireEmitter()
	defer ReleaseEmitter(got)
	if got == e {
		t.Fatal("oversized emitter was pooled")
	}
}

func TestAppendEscapeParity(t *testing.T) {
	cases := []string{
		"", "plain", "a<b&c>d", `quote"tab` + "\ttext", "\r\n", "\xff", "\x00",
		"ünïcødé", "mixed \xffü<&", strings.Repeat("x", 1000) + "<",
	}
	for _, s := range cases {
		if got, want := string(AppendEscText(nil, s)), EscapeText(s); got != want {
			t.Errorf("AppendEscText(%q) = %q, want %q", s, got, want)
		}
		if got, want := string(AppendEscAttr(nil, s)), EscapeAttr(s); got != want {
			t.Errorf("AppendEscAttr(%q) = %q, want %q", s, got, want)
		}
		if got, want := EscapedTextLen(s), len(EscapeText(s)); got != want {
			t.Errorf("EscapedTextLen(%q) = %d, want %d", s, got, want)
		}
		if got, want := EscapedAttrLen(s), len(EscapeAttr(s)); got != want {
			t.Errorf("EscapedAttrLen(%q) = %d, want %d", s, got, want)
		}
	}
}

func BenchmarkEmitterEnvelope(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := AcquireEmitter()
		e.Declaration()
		e.Start(Name{Prefix: "SOAP-ENV", Local: "Envelope"})
		e.Start(Name{Prefix: "SOAP-ENV", Local: "Body"})
		for j := 0; j < 16; j++ {
			e.Start(Name{Prefix: "m", Local: "echo"})
			e.Attr(Name{Prefix: "xmlns", Local: "m"}, "urn:spi:Echo")
			e.Start(Name{Local: "data"})
			e.Text("payload")
			e.End()
			e.End()
		}
		e.End()
		e.End()
		if err := e.Finish(); err != nil {
			b.Fatal(err)
		}
		ReleaseEmitter(e)
	}
}
