package xmltext

import (
	"strings"
	"unicode/utf8"
)

// EscapeText escapes s for use as XML character data: '&', '<' and '>' are
// replaced by entity references, carriage returns by a character reference
// (so they survive end-of-line normalization), and invalid XML characters by
// U+FFFD.
func EscapeText(s string) string {
	return escape(s, false)
}

// EscapeAttr escapes s for use inside a double-quoted attribute value. In
// addition to the text escapes it encodes '"', tab and newline so the exact
// value round-trips through attribute-value normalization.
func EscapeAttr(s string) string {
	return escape(s, true)
}

func escape(s string, attr bool) string {
	// Fast path: nothing to escape.
	if !needsEscape(s, attr) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); {
		r, size := utf8.DecodeRuneInString(s[i:])
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '"':
			if attr {
				b.WriteString("&quot;")
			} else {
				b.WriteByte('"')
			}
		case '\r':
			b.WriteString("&#13;")
		case '\t':
			if attr {
				b.WriteString("&#9;")
			} else {
				b.WriteByte('\t')
			}
		case '\n':
			if attr {
				b.WriteString("&#10;")
			} else {
				b.WriteByte('\n')
			}
		case utf8.RuneError:
			if size == 1 {
				// Invalid UTF-8 byte: replace, as encoders must not emit it.
				b.WriteRune(utf8.RuneError)
				i += size
				continue
			}
			b.WriteRune(r)
		default:
			if !isValidXMLChar(r) {
				b.WriteRune(utf8.RuneError)
			} else {
				b.WriteString(s[i : i+size])
			}
		}
		i += size
	}
	return b.String()
}

func needsEscape(s string, attr bool) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '&', '<', '>', '\r':
			return true
		case '"', '\t', '\n':
			if attr {
				return true
			}
		default:
			if c < 0x20 || c >= utf8.RuneSelf {
				return true
			}
		}
	}
	return false
}
