package xmltext

import (
	"strings"
	"unicode/utf8"
)

// EscapeText escapes s for use as XML character data: '&', '<' and '>' are
// replaced by entity references, carriage returns by a character reference
// (so they survive end-of-line normalization), and invalid XML characters by
// U+FFFD.
func EscapeText(s string) string {
	return escape(s, false)
}

// EscapeAttr escapes s for use inside a double-quoted attribute value. In
// addition to the text escapes it encodes '"', tab and newline so the exact
// value round-trips through attribute-value normalization.
func EscapeAttr(s string) string {
	return escape(s, true)
}

func escape(s string, attr bool) string {
	// Fast path: nothing to escape.
	if !needsEscape(s, attr) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	escapeSlow(&b, s, attr)
	return b.String()
}

// AppendEscText appends s to dst escaped as character data, exactly as
// EscapeText would render it. When nothing needs escaping the bytes are
// copied in one append — the emitter's no-escape fast path.
func AppendEscText(dst []byte, s string) []byte {
	if !needsEscape(s, false) {
		return append(dst, s...)
	}
	return appendEscapeSlow(dst, s, false)
}

// AppendEscAttr appends s to dst escaped as a double-quoted attribute
// value, exactly as EscapeAttr would render it.
func AppendEscAttr(dst []byte, s string) []byte {
	if !needsEscape(s, true) {
		return append(dst, s...)
	}
	return appendEscapeSlow(dst, s, true)
}

// EscapedTextLen returns len(EscapeText(s)) without materializing the
// escaped string, for exact-size serialization buffers.
func EscapedTextLen(s string) int { return escapedLen(s, false) }

// EscapedAttrLen returns len(EscapeAttr(s)) without materializing the
// escaped string.
func EscapedAttrLen(s string) int { return escapedLen(s, true) }

// escWriter abstracts the two escape sinks (strings.Builder, []byte append)
// over one walk so their outputs can never diverge.
type escWriter interface {
	WriteString(s string) (int, error)
	WriteByte(c byte) error
	WriteRune(r rune) (int, error)
}

// byteAppender adapts a []byte to escWriter without heap indirection at the
// call sites that matter (appendEscapeSlow keeps it on the stack).
type byteAppender struct{ b []byte }

func (a *byteAppender) WriteString(s string) (int, error) { a.b = append(a.b, s...); return len(s), nil }
func (a *byteAppender) WriteByte(c byte) error            { a.b = append(a.b, c); return nil }
func (a *byteAppender) WriteRune(r rune) (int, error) {
	a.b = utf8.AppendRune(a.b, r)
	return utf8.RuneLen(r), nil
}

func appendEscapeSlow(dst []byte, s string, attr bool) []byte {
	a := byteAppender{b: dst}
	escapeSlow(&a, s, attr)
	return a.b
}

func escapeSlow(b escWriter, s string, attr bool) {
	for i := 0; i < len(s); {
		r, size := utf8.DecodeRuneInString(s[i:])
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '"':
			if attr {
				b.WriteString("&quot;")
			} else {
				b.WriteByte('"')
			}
		case '\r':
			b.WriteString("&#13;")
		case '\t':
			if attr {
				b.WriteString("&#9;")
			} else {
				b.WriteByte('\t')
			}
		case '\n':
			if attr {
				b.WriteString("&#10;")
			} else {
				b.WriteByte('\n')
			}
		case utf8.RuneError:
			if size == 1 {
				// Invalid UTF-8 byte: replace, as encoders must not emit it.
				b.WriteRune(utf8.RuneError)
				i += size
				continue
			}
			b.WriteRune(r)
		default:
			if !isValidXMLChar(r) {
				b.WriteRune(utf8.RuneError)
			} else {
				b.WriteString(s[i : i+size])
			}
		}
		i += size
	}
}

// escapedLen mirrors escapeSlow's walk, summing output lengths instead of
// writing bytes.
func escapedLen(s string, attr bool) int {
	if !needsEscape(s, attr) {
		return len(s)
	}
	n := 0
	for i := 0; i < len(s); {
		r, size := utf8.DecodeRuneInString(s[i:])
		switch r {
		case '&':
			n += len("&amp;")
		case '<', '>':
			n += len("&lt;")
		case '"':
			if attr {
				n += len("&quot;")
			} else {
				n++
			}
		case '\r':
			n += len("&#13;")
		case '\t':
			if attr {
				n += len("&#9;")
			} else {
				n++
			}
		case '\n':
			if attr {
				n += len("&#10;")
			} else {
				n++
			}
		case utf8.RuneError:
			n += utf8.RuneLen(utf8.RuneError)
		default:
			if !isValidXMLChar(r) {
				n += utf8.RuneLen(utf8.RuneError)
			} else {
				n += size
			}
		}
		i += size
	}
	return n
}

func needsEscape(s string, attr bool) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '&', '<', '>', '\r':
			return true
		case '"', '\t', '\n':
			if attr {
				return true
			}
		default:
			if c < 0x20 || c >= utf8.RuneSelf {
				return true
			}
		}
	}
	return false
}
