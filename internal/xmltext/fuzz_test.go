package xmltext

import (
	"io"
	"strings"
	"testing"
)

// FuzzTokenizer feeds arbitrary bytes to the tokenizer. The invariants:
// it never panics, always terminates, and once it has reported a syntax
// error it keeps reporting errors (no resurrection after corruption).
func FuzzTokenizer(f *testing.F) {
	for _, seed := range []string{
		``,
		`<a/>`,
		`<a b="c">text</a>`,
		`<?xml version="1.0" encoding="UTF-8"?><root><child/></root>`,
		`<SOAP-ENV:Envelope xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/"><SOAP-ENV:Body><m:echo xmlns:m="urn:spi:Echo"><message xsi:type="xsd:string">hi</message></m:echo></SOAP-ENV:Body></SOAP-ENV:Envelope>`,
		`<spi:Parallel_Method xmlns:spi="http://spi.ict.ac.cn/pack"><m:op spi:id="0" spi:service="Echo"/></spi:Parallel_Method>`,
		`<a><![CDATA[ <not> markup & such ]]></a>`,
		`<a><!-- comment --></a>`,
		`<a>&lt;&gt;&amp;&quot;&apos;&#65;&#x41;</a>`,
		`<a>&bogus;</a>`,
		`<a`,
		`</a>`,
		`<a></b>`,
		`<a b='single' c="double"/>`,
		`<a b="unterminated`,
		`<a xmlns="">x</a>`,
		"<a>\xff\xfe</a>",
		`<![CDATA[lonely]]>`,
		`<!DOCTYPE html>`,
		strings.Repeat(`<d>`, 50) + strings.Repeat(`</d>`, 50),
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tk := NewTokenizer(strings.NewReader(string(data)))
		sawErr := false
		for i := 0; ; i++ {
			_, err := tk.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if sawErr {
					// A second call after an error may error again; fine.
				}
				sawErr = true
				// The tokenizer must stay in its error state: the next call
				// must not fabricate tokens from a corrupt stream.
				if _, err2 := tk.Next(); err2 == nil {
					t.Fatalf("tokenizer recovered after error %v", err)
				}
				break
			}
			if i > 1_000_000 {
				t.Fatal("tokenizer did not terminate")
			}
		}
	})
}
