package xmltext

import "sync"

// String interning for the decode hot path.
//
// SOAP traffic reuses a tiny vocabulary: every envelope spells the same
// element names (Envelope, Body, Parallel_Method, operation names), the
// same attribute names (xmlns:*, xsi:type, spi:id) and the same attribute
// values (namespace URIs, type QNames). Materializing a fresh string for
// each occurrence is where the tokenizer used to spend most of its
// allocations. The table below turns those into map hits: a lookup keyed
// by the raw bytes (which Go compiles to an allocation-free map access)
// returns the one shared copy.
//
// The table is global and append-only. It is capped so hostile traffic
// full of unique names cannot grow it without bound — past the cap,
// lookups still hit for the seeded/learned vocabulary and misses simply
// allocate as before. There is no eviction: the working set of a SOAP
// deployment (its WSDL vocabulary) is static and small.
const (
	// maxInternLen is the longest byte string worth interning. Namespace
	// URIs are the longest hot strings; payload text is deliberately past
	// this when callers ask (see internWhitespace).
	maxInternLen = 128
	// maxInternEntries bounds each table (strings and names separately).
	maxInternEntries = 8192
)

type internTable struct {
	mu      sync.RWMutex
	strings map[string]string
	names   map[string]Name
}

var interns = seedInterns()

// seedInterns pre-loads the SOAP vocabulary so the very first request
// already hits, and so the cap can never evict the core protocol names.
func seedInterns() *internTable {
	t := &internTable{
		strings: make(map[string]string, 256),
		names:   make(map[string]Name, 256),
	}
	seedStrings := []string{
		// Namespace URIs (attribute values).
		"http://schemas.xmlsoap.org/soap/envelope/",
		"http://schemas.xmlsoap.org/soap/encoding/",
		"http://www.w3.org/2003/05/soap-envelope",
		"http://www.w3.org/2001/XMLSchema-instance",
		"http://www.w3.org/2001/XMLSchema",
		"http://spi.ict.ac.cn/pack",
		// Type QNames (attribute values).
		"xsd:string", "xsd:int", "xsd:long", "xsd:boolean", "xsd:double",
		"xsd:base64Binary", "xsd:dateTime", "SOAP-ENC:Array",
		"true", "false", "1", "0",
	}
	seedNames := []string{
		// Envelope structure.
		"SOAP-ENV:Envelope", "SOAP-ENV:Header", "SOAP-ENV:Body",
		"SOAP-ENV:Fault", "SOAP-ENV:mustUnderstand", "env:Envelope",
		"env:Header", "env:Body", "env:Fault", "Envelope", "Header", "Body",
		"faultcode", "faultstring", "faultactor", "detail",
		// Namespace declarations.
		"xmlns", "xmlns:SOAP-ENV", "xmlns:SOAP-ENC", "xmlns:xsi",
		"xmlns:xsd", "xmlns:spi", "xmlns:m", "xmlns:env", "xmlns:h",
		// Typing and packing attributes.
		"xsi:type", "xsi:nil", "SOAP-ENC:arrayType",
		"spi:Parallel_Method", "spi:Parallel_Response", "spi:id", "spi:service",
		"item", "xml",
	}
	for _, s := range seedStrings {
		t.strings[s] = s
	}
	for _, s := range seedNames {
		t.strings[s] = s
		t.names[s] = ParseName(s)
	}
	return t
}

// Intern returns a string equal to b, reusing the shared interned copy
// when one exists. On a hit no allocation happens; on a miss the string is
// allocated once and (capacity permitting) remembered for next time.
func Intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > maxInternLen {
		return string(b)
	}
	t := interns
	t.mu.RLock()
	s, ok := t.strings[string(b)] // compiler elides the []byte->string copy
	t.mu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	t.mu.Lock()
	if prev, ok := t.strings[s]; ok {
		s = prev
	} else if len(t.strings) < maxInternEntries {
		t.strings[s] = s
	}
	t.mu.Unlock()
	return s
}

// InternName parses a raw (possibly prefixed) XML name and interns the
// result: both the split and the string copies are amortized, so after the
// first occurrence a name costs one map hit and zero allocations.
func InternName(b []byte) Name {
	if len(b) == 0 {
		return Name{}
	}
	t := interns
	if len(b) <= maxInternLen {
		t.mu.RLock()
		n, ok := t.names[string(b)]
		t.mu.RUnlock()
		if ok {
			return n
		}
	}
	raw := Intern(b)
	n := ParseName(raw) // Prefix/Local share raw's backing array
	if len(raw) <= maxInternLen {
		t.mu.Lock()
		if len(t.names) < maxInternEntries {
			t.names[raw] = n
		}
		t.mu.Unlock()
	}
	return n
}

// internSize reports the current table sizes (strings, names), for tests.
func internSize() (int, int) {
	interns.mu.RLock()
	defer interns.mu.RUnlock()
	return len(interns.strings), len(interns.names)
}

// IsWhitespace reports whether b is entirely XML whitespace. It is the
// allocation-free form of strings.TrimSpace(string(b)) == "" for the byte
// slices handed out by Tokenizer.TokenBytes.
func IsWhitespace(b []byte) bool {
	for _, c := range b {
		if !isSpaceByte(c) {
			return false
		}
	}
	return true
}
