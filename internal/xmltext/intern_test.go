package xmltext

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"unsafe"
)

func TestInternReturnsSharedCopy(t *testing.T) {
	// A seeded vocabulary string always hits the shared copy, regardless
	// of how full earlier tests (shuffled in any order) left the table.
	a := Intern([]byte("spi:id"))
	b := Intern([]byte("spi:id"))
	if unsafe.StringData(a) != unsafe.StringData(b) {
		t.Error("second Intern of a seeded string did not return the shared copy")
	}
	// A fresh string shares its copy only while the table has room.
	size, _ := internSize()
	c := Intern([]byte("urn:intern-test:shared"))
	d := Intern([]byte("urn:intern-test:shared"))
	if c != d {
		t.Fatalf("interned strings differ: %q vs %q", c, d)
	}
	if size < maxInternEntries && unsafe.StringData(c) != unsafe.StringData(d) {
		t.Error("second Intern of the same bytes did not return the shared copy")
	}
}

func TestInternNameSplitsOnce(t *testing.T) {
	_, names := internSize()
	n1 := InternName([]byte("spi:internTestOp"))
	n2 := InternName([]byte("spi:internTestOp"))
	if n1 != n2 {
		t.Fatalf("interned names differ: %v vs %v", n1, n2)
	}
	if n1.Prefix != "spi" || n1.Local != "internTestOp" {
		t.Fatalf("bad split: %+v", n1)
	}
	// Pointer identity needs the name remembered, which needs table room —
	// shuffled test orders may have filled it first.
	if names < maxInternEntries && unsafe.StringData(n1.Local) != unsafe.StringData(n2.Local) {
		t.Error("second InternName did not return the cached Name")
	}
}

func TestInternSeededVocabulary(t *testing.T) {
	// The protocol vocabulary must hit without growing the table.
	s0, n0 := internSize()
	for _, s := range []string{
		"http://schemas.xmlsoap.org/soap/envelope/", "xsd:string", "true",
	} {
		Intern([]byte(s))
	}
	for _, s := range []string{"SOAP-ENV:Envelope", "spi:id", "xsi:type"} {
		InternName([]byte(s))
	}
	s1, n1 := internSize()
	if s1 != s0 || n1 != n0 {
		t.Errorf("seeded lookups grew the table: strings %d->%d names %d->%d", s0, s1, n0, n1)
	}
}

func TestInternCapAndLongStrings(t *testing.T) {
	long := strings.Repeat("x", maxInternLen+1)
	if got := Intern([]byte(long)); got != long {
		t.Fatalf("long string mangled")
	}
	s0, _ := internSize()
	Intern([]byte(long))
	if s1, _ := internSize(); s1 != s0 {
		t.Error("over-length string was interned")
	}
	// The cap stops growth but never breaks correctness.
	for i := 0; i < maxInternEntries+100; i++ {
		s := fmt.Sprintf("urn:cap-filler:%d", i)
		if got := Intern([]byte(s)); got != s {
			t.Fatalf("Intern(%q) = %q", s, got)
		}
	}
	if s1, _ := internSize(); s1 > maxInternEntries {
		t.Errorf("table exceeded cap: %d > %d", s1, maxInternEntries)
	}
}

func TestInternConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s := fmt.Sprintf("urn:conc:%d", i%50)
				if got := Intern([]byte(s)); got != s {
					t.Errorf("Intern(%q) = %q", s, got)
					return
				}
				InternName([]byte(fmt.Sprintf("p:conc%d", i%50)))
			}
		}(g)
	}
	wg.Wait()
}

func TestIsWhitespace(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want bool
	}{
		{"", true}, {" \t\r\n", true}, {" x ", false}, {"x", false},
	} {
		if got := IsWhitespace([]byte(tc.in)); got != tc.want {
			t.Errorf("IsWhitespace(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestTokenBytesRawText checks the zero-copy text mode: content arrives via
// TokenBytes, matches the materialized mode byte for byte, and the slice is
// invalidated (reused) by the next token rather than leaking stale data.
func TestTokenBytesRawText(t *testing.T) {
	const doc = `<a>first &amp; entity</a>`
	tk := NewTokenizer(strings.NewReader(doc))
	tk.SetRawText(true)
	if tok, err := tk.Next(); err != nil || tok.Kind != KindStartElement {
		t.Fatalf("start: %v %v", tok, err)
	}
	tok, err := tk.Next()
	if err != nil || tok.Kind != KindText {
		t.Fatalf("text: %v %v", tok, err)
	}
	if tok.Text != "" {
		t.Errorf("raw mode materialized Text %q", tok.Text)
	}
	if got := string(tk.TokenBytes()); got != "first & entity" {
		t.Errorf("TokenBytes = %q", got)
	}
}

// TestRawTextMatchesMaterialized runs both modes over documents with
// entities, CDATA and mixed content and checks the byte streams agree.
func TestRawTextMatchesMaterialized(t *testing.T) {
	docs := []string{
		`<a>plain</a>`,
		`<a>one<b>two</b>three</a>`,
		`<a><![CDATA[<raw & bytes>]]></a>`,
		`<a>&#65;&lt;mix&gt;<![CDATA[]]>tail</a>`,
	}
	for _, doc := range docs {
		plain := NewTokenizer(strings.NewReader(doc))
		raw := NewTokenizer(strings.NewReader(doc))
		raw.SetRawText(true)
		for {
			a, errA := plain.Next()
			b, errB := raw.Next()
			if (errA == nil) != (errB == nil) {
				t.Fatalf("%s: error divergence %v vs %v", doc, errA, errB)
			}
			if errA == io.EOF {
				break
			}
			if errA != nil {
				t.Fatalf("%s: %v", doc, errA)
			}
			if a.Kind != b.Kind || a.Name != b.Name {
				t.Fatalf("%s: token divergence %v vs %v", doc, a, b)
			}
			if a.Kind == KindText && a.Text != string(raw.TokenBytes()) {
				t.Fatalf("%s: text %q vs raw %q", doc, a.Text, raw.TokenBytes())
			}
		}
	}
}

// TestReuseTokenAttrs checks the shared-attrs mode: values are correct per
// token, and the backing array really is reused across tokens.
func TestReuseTokenAttrs(t *testing.T) {
	const doc = `<r><a x="1" y="2"/><b z="3"/></r>`
	tk := NewTokenizer(strings.NewReader(doc))
	tk.SetReuseTokenAttrs(true)
	var prev []Attr
	seen := 0
	for {
		tok, err := tk.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind != KindStartElement {
			continue
		}
		switch tok.Name.Local {
		case "a":
			if v, _ := tok.Attr(Name{Local: "x"}); v != "1" {
				t.Errorf("a/x = %q", v)
			}
			prev = tok.Attrs
			seen++
		case "b":
			if v, _ := tok.Attr(Name{Local: "z"}); v != "3" {
				t.Errorf("b/z = %q", v)
			}
			if len(prev) > 0 && len(tok.Attrs) > 0 && &prev[:1][0] != &tok.Attrs[:1][0] {
				t.Error("attrs backing array was not reused")
			}
			seen++
		}
	}
	if seen != 2 {
		t.Fatalf("saw %d start tokens with attrs, want 2", seen)
	}
}

// TestProcInstTrim pins the PI separator-trim behaviour the double-trim fix
// must preserve.
func TestProcInstTrim(t *testing.T) {
	tk := NewTokenizer(strings.NewReader(`<?xml   version="1.0"?><a/>`))
	tok, err := tk.Next()
	if err != nil || tok.Kind != KindProcInst {
		t.Fatalf("pi: %v %v", tok, err)
	}
	if tok.Target != "xml" || tok.Text != `version="1.0"` {
		t.Errorf("pi = target %q text %q", tok.Target, tok.Text)
	}
}
