package xmltext

import (
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// drainAny tokenizes until EOF or error; it must never panic or loop
// forever. Returns the number of tokens and the terminal error.
func drainAny(src string) (int, error) {
	tk := NewTokenizer(strings.NewReader(src))
	n := 0
	for {
		_, err := tk.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
		if n > 1_000_000 {
			panic("tokenizer did not terminate")
		}
	}
}

// Property: arbitrary byte soup never panics the tokenizer and always
// terminates.
func TestQuickArbitraryBytesNeverPanic(t *testing.T) {
	f := func(data []byte) bool {
		drainAny(string(data))
		return true
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: markup-flavoured random soup (lots of <, >, &, quotes) never
// panics. Plain random bytes rarely contain markup, so bias the alphabet.
func TestQuickMarkupSoupNeverPanics(t *testing.T) {
	alphabet := []byte(`<>/&;"'=! abAB-_.:[]?-`)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(200)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[r.Intn(len(alphabet))]
		}
		drainAny(string(buf))
		return true
	}
	cfg := &quick.Config{MaxCount: 3000, Rand: rand.New(rand.NewSource(43))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: mutations of a valid document never panic, and whenever they
// tokenize successfully the token stream is well-nested (guaranteed by the
// tokenizer's own stack checks, exercised here under stress).
func TestQuickMutatedDocuments(t *testing.T) {
	base := `<?xml version="1.0"?><a x="1"><b>text &amp; more</b><!--c--><c><![CDATA[raw]]></c></a>`
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		buf := []byte(base)
		for k := 0; k < 1+r.Intn(5); k++ {
			switch r.Intn(3) {
			case 0: // flip a byte
				buf[r.Intn(len(buf))] = byte(r.Intn(256))
			case 1: // delete a byte
				i := r.Intn(len(buf))
				buf = append(buf[:i], buf[i+1:]...)
			case 2: // duplicate a span
				i := r.Intn(len(buf))
				j := i + r.Intn(len(buf)-i)
				buf = append(buf[:j], append([]byte(string(buf[i:j])), buf[j:]...)...)
			}
			if len(buf) == 0 {
				buf = []byte("<a/>")
			}
		}
		drainAny(string(buf))
		return true
	}
	cfg := &quick.Config{MaxCount: 3000, Rand: rand.New(rand.NewSource(47))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Deep nesting close to the limit must work; past it must error cleanly.
func TestNestingBoundary(t *testing.T) {
	var b strings.Builder
	for i := 0; i < MaxDepth; i++ {
		b.WriteString("<d>")
	}
	for i := 0; i < MaxDepth; i++ {
		b.WriteString("</d>")
	}
	if _, err := drainAny(b.String()); err != nil {
		t.Errorf("depth == MaxDepth rejected: %v", err)
	}
}

// Very long names, attribute values and text runs tokenize correctly.
func TestLongTokens(t *testing.T) {
	longName := strings.Repeat("n", 10_000)
	longVal := strings.Repeat("v", 100_000)
	longText := strings.Repeat("t", 1_000_000)
	src := "<" + longName + ` a="` + longVal + `">` + longText + "</" + longName + ">"
	toks := drain(t, src)
	if toks[0].Name.Local != longName {
		t.Error("long name mangled")
	}
	if toks[0].Attrs[0].Value != longVal {
		t.Error("long attr mangled")
	}
	if toks[1].Text != longText {
		t.Error("long text mangled")
	}
}

// A pathological entity bomb is rejected by the entity-length guard rather
// than expanding (we support only character references and the five
// predefined entities — no general entities, so no billion laughs).
func TestNoEntityExpansion(t *testing.T) {
	src := `<a>&` + strings.Repeat("x", 100) + `;</a>`
	if _, err := drainAny(src); err == nil {
		t.Error("oversized entity accepted")
	}
}
