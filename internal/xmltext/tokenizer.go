package xmltext

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"unicode/utf8"
)

// Limits guarding against pathological or hostile input. They are generous
// for SOAP traffic (the paper's largest experiment packs 128 x 100 KB
// payloads into one envelope, well under these caps).
const (
	// MaxDepth is the maximum element nesting depth.
	MaxDepth = 1024
	// MaxTokenBytes is the maximum size of a single token (one text run,
	// one start tag including attributes, one comment, ...).
	MaxTokenBytes = 256 << 20
	// MaxAttrs is the maximum number of attributes on one element.
	MaxAttrs = 1024
)

// Tokenizer reads a stream of XML tokens from an io.Reader.
//
// The zero value is not usable; call NewTokenizer. A Tokenizer checks
// well-formedness incrementally: tags must nest properly, attribute names
// must be unique per element, and exactly one root element is allowed.
type Tokenizer struct {
	r    *bufio.Reader
	pos  Pos
	off  int64  // bytes consumed from the input
	err  error  // sticky error
	open []Name // stack of open elements

	// pendingEnd is set after a self-closing start tag so the next call
	// returns the synthetic end token.
	pendingEnd Name
	hasPending bool

	sawRoot    bool // a root element has been opened
	rootClosed bool // the root element has been closed

	buf []byte // scratch for token assembly, reused between calls
	val []byte // scratch for attribute values, reused between calls

	// rawText suppresses string materialization for Text tokens: the
	// caller reads the content through TokenBytes instead. See SetRawText.
	rawText bool
	// reuseAttrs makes successive start tokens share one Attrs backing
	// array. See SetReuseTokenAttrs.
	reuseAttrs bool
	attrs      []Attr // scratch for Token.Attrs when reuseAttrs is set

	// src backs ResetBytes, so tokenizing an in-memory document needs no
	// separate bytes.Reader allocation.
	src bytes.Reader
}

// NewTokenizer returns a Tokenizer reading from r.
func NewTokenizer(r io.Reader) *Tokenizer {
	t := &Tokenizer{}
	t.Reset(r)
	return t
}

// Reset prepares t to read a new document from r, discarding all state
// from the previous document while keeping grown scratch buffers (and the
// 16 KB read buffer). Raw-text and attribute-reuse modes persist across
// resets.
func (t *Tokenizer) Reset(r io.Reader) {
	if t.r == nil {
		t.r = bufio.NewReaderSize(r, 16<<10)
	} else {
		t.r.Reset(r)
	}
	t.pos = Pos{Line: 1, Col: 1}
	t.off = 0
	t.err = nil
	t.open = t.open[:0]
	t.pendingEnd = Name{}
	t.hasPending = false
	t.sawRoot = false
	t.rootClosed = false
	t.buf = t.buf[:0]
	t.val = t.val[:0]
}

// ResetBytes is Reset over an in-memory document, reusing an internal
// bytes.Reader so repeated decodes allocate nothing for the source.
func (t *Tokenizer) ResetBytes(b []byte) {
	t.src.Reset(b)
	t.Reset(&t.src)
}

// tokenizerPool recycles Tokenizers — principally their 16 KB read
// buffers — across documents for the decode hot paths.
var tokenizerPool = sync.Pool{New: func() any { return &Tokenizer{} }}

// AcquireTokenizer returns a pooled Tokenizer positioned at the start of
// the in-memory document b, with raw-text and attribute-reuse modes off
// (callers enable what they need). Pass it to ReleaseTokenizer when done;
// after that neither the Tokenizer nor any TokenBytes slice obtained from
// it may be used.
func AcquireTokenizer(b []byte) *Tokenizer {
	t := tokenizerPool.Get().(*Tokenizer)
	t.rawText = false
	t.reuseAttrs = false
	t.ResetBytes(b)
	return t
}

// ReleaseTokenizer returns a Tokenizer obtained from AcquireTokenizer to
// the pool. It drops the reference to the caller's document so the pool
// never pins request bodies.
func ReleaseTokenizer(t *Tokenizer) {
	t.src.Reset(nil)
	tokenizerPool.Put(t)
}

// SetRawText switches Text and ProcInst tokens to zero-copy delivery:
// their Text field stays empty and the content is read through TokenBytes
// instead, valid only until the next call to Next. Comment tokens are
// unaffected (they are not on any hot path). Callers that keep text beyond
// one token — like the DOM builder — copy it themselves, which lets them
// skip the copy entirely for whitespace runs and other text they discard
// (both hot consumers discard the XML declaration outright).
func (t *Tokenizer) SetRawText(on bool) { t.rawText = on }

// SetReuseTokenAttrs makes every start-element token share one attribute
// backing array: Token.Attrs is only valid until the next call to Next.
// Callers that copy attributes out immediately (the DOM builder does) save
// one allocation per element.
func (t *Tokenizer) SetReuseTokenAttrs(on bool) { t.reuseAttrs = on }

// TokenBytes returns the raw content bytes of the most recent Text token
// (and, under SetRawText, the only way to read it). The slice aliases the
// tokenizer's scratch buffer: it is valid only until the next call to Next
// and must not be modified.
func (t *Tokenizer) TokenBytes() []byte { return t.buf }

// Pos returns the current input position (just past the last byte consumed).
func (t *Tokenizer) Pos() Pos { return t.pos }

// InputOffset returns the number of input bytes consumed so far: the byte
// offset of the first unconsumed byte. After Next returns a token whose
// markup ends at the offset boundary (a start or end tag), the offset
// points just past that tag's closing '>'. Synthetic end tokens for
// self-closing tags consume no input, so the offset is stable across them.
// Combined with ResetBytes/AcquireTokenizer over an in-memory document,
// this lets callers recover the exact raw byte span of a subtree.
func (t *Tokenizer) InputOffset() int64 { return t.off }

// Depth returns the current element nesting depth.
func (t *Tokenizer) Depth() int { return len(t.open) }

func (t *Tokenizer) syntaxErr(format string, args ...any) error {
	err := &SyntaxError{Pos: t.pos, Msg: fmt.Sprintf(format, args...)}
	t.err = err
	return err
}

// readByte consumes one byte, tracking position.
func (t *Tokenizer) readByte() (byte, error) {
	c, err := t.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return 0, io.EOF
		}
		t.err = err
		return 0, err
	}
	if c == '\n' {
		t.pos.Line++
		t.pos.Col = 1
	} else {
		t.pos.Col++
	}
	t.off++
	return c, nil
}

func (t *Tokenizer) unreadByte() {
	// bufio guarantees one byte of unread after a successful ReadByte.
	_ = t.r.UnreadByte()
	if t.pos.Col > 1 {
		t.pos.Col--
	}
	t.off--
}

func (t *Tokenizer) peekByte() (byte, error) {
	b, err := t.r.Peek(1)
	if err != nil {
		if err == io.EOF {
			return 0, io.EOF
		}
		t.err = err
		return 0, err
	}
	return b[0], nil
}

// Next returns the next token. At end of input it returns io.EOF. Once any
// error has been returned, every subsequent call returns the same error.
func (t *Tokenizer) Next() (Token, error) {
	if t.err != nil {
		return Token{}, t.err
	}
	if t.hasPending {
		t.hasPending = false
		name := t.pendingEnd
		t.popElement(name)
		return Token{Kind: KindEndElement, Name: name}, nil
	}

	c, err := t.peekByte()
	if err == io.EOF {
		if len(t.open) > 0 {
			return Token{}, t.syntaxErr("unexpected EOF: element <%s> not closed", t.open[len(t.open)-1])
		}
		if !t.rootClosed {
			return Token{}, t.syntaxErr("unexpected EOF: no root element")
		}
		t.err = io.EOF
		return Token{}, io.EOF
	}
	if err != nil {
		return Token{}, err
	}

	if c == '<' {
		return t.readMarkup()
	}
	return t.readText()
}

// readText consumes character data up to the next '<' (or EOF) and returns
// it as a single text token, with entities decoded.
func (t *Tokenizer) readText() (Token, error) {
	t.buf = t.buf[:0]
	for {
		c, err := t.readByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Token{}, err
		}
		if c == '<' {
			t.unreadByte()
			break
		}
		if c == '&' {
			r, err := t.readEntity()
			if err != nil {
				return Token{}, err
			}
			t.buf = utf8.AppendRune(t.buf, r)
		} else {
			t.buf = append(t.buf, c)
		}
		if len(t.buf) > MaxTokenBytes {
			return Token{}, t.syntaxErr("text token exceeds %d bytes", MaxTokenBytes)
		}
	}
	if len(t.open) == 0 {
		// Outside the root element only whitespace is allowed. Checked on
		// the raw bytes: this run is discarded either way, so it never
		// needs to become a string at all.
		if !IsWhitespace(t.buf) {
			return Token{}, t.syntaxErr("character data outside root element")
		}
		// Skip it and continue with the following markup or EOF.
		return t.Next()
	}
	if t.rawText {
		return Token{Kind: KindText}, nil
	}
	return Token{Kind: KindText, Text: string(t.buf)}, nil
}

// readEntity decodes one entity reference; the leading '&' has been consumed.
func (t *Tokenizer) readEntity() (rune, error) {
	var name []byte
	for {
		c, err := t.readByte()
		if err != nil {
			return 0, t.syntaxErr("unterminated entity reference")
		}
		if c == ';' {
			break
		}
		name = append(name, c)
		if len(name) > 32 {
			return 0, t.syntaxErr("entity reference too long")
		}
	}
	s := string(name)
	switch s {
	case "lt":
		return '<', nil
	case "gt":
		return '>', nil
	case "amp":
		return '&', nil
	case "quot":
		return '"', nil
	case "apos":
		return '\'', nil
	}
	if strings.HasPrefix(s, "#") {
		return t.decodeCharRef(s[1:])
	}
	return 0, t.syntaxErr("unknown entity &%s;", s)
}

func (t *Tokenizer) decodeCharRef(s string) (rune, error) {
	base := 10
	if strings.HasPrefix(s, "x") || strings.HasPrefix(s, "X") {
		base = 16
		s = s[1:]
	}
	if s == "" {
		return 0, t.syntaxErr("empty character reference")
	}
	var n int64
	for _, c := range s {
		var d int64
		switch {
		case c >= '0' && c <= '9':
			d = int64(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			d = int64(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = int64(c-'A') + 10
		default:
			return 0, t.syntaxErr("bad character reference &#%s;", s)
		}
		n = n*int64(base) + d
		if n > utf8.MaxRune {
			return 0, t.syntaxErr("character reference out of range")
		}
	}
	r := rune(n)
	if !isValidXMLChar(r) {
		return 0, t.syntaxErr("character reference U+%04X is not a valid XML character", n)
	}
	return r, nil
}

// isValidXMLChar reports whether r is allowed in XML 1.0 content.
func isValidXMLChar(r rune) bool {
	switch {
	case r == '\t' || r == '\n' || r == '\r':
		return true
	case r >= 0x20 && r <= 0xD7FF:
		return true
	case r >= 0xE000 && r <= 0xFFFD:
		return true
	case r >= 0x10000 && r <= 0x10FFFF:
		return true
	}
	return false
}

// readMarkup handles everything that begins with '<'.
func (t *Tokenizer) readMarkup() (Token, error) {
	if _, err := t.readByte(); err != nil { // consume '<'
		return Token{}, err
	}
	c, err := t.peekByte()
	if err != nil {
		return Token{}, t.syntaxErr("unexpected EOF after '<'")
	}
	switch c {
	case '/':
		_, _ = t.readByte()
		return t.readEndTag()
	case '!':
		_, _ = t.readByte()
		return t.readBang()
	case '?':
		_, _ = t.readByte()
		return t.readProcInst()
	default:
		return t.readStartTag()
	}
}

// readStartTag parses "<name attr='v' ...>" or "<name ... />"; the '<' has
// been consumed.
func (t *Tokenizer) readStartTag() (Token, error) {
	if t.rootClosed {
		return Token{}, t.syntaxErr("content after root element")
	}
	raw, err := t.readRawName()
	if err != nil {
		return Token{}, err
	}
	name := InternName(raw)
	tok := Token{Kind: KindStartElement, Name: name}
	if t.reuseAttrs {
		tok.Attrs = t.attrs[:0]
	}
	for {
		if err := t.skipSpace(); err != nil {
			return Token{}, t.syntaxErr("unexpected EOF in tag <%s>", name)
		}
		c, err := t.readByte()
		if err != nil {
			return Token{}, t.syntaxErr("unexpected EOF in tag <%s>", name)
		}
		switch c {
		case '>':
			t.pushElement(name)
			if t.reuseAttrs {
				t.attrs = tok.Attrs
			}
			return tok, t.err
		case '/':
			c2, err := t.readByte()
			if err != nil || c2 != '>' {
				return Token{}, t.syntaxErr("expected '>' after '/' in tag <%s>", name)
			}
			tok.SelfClosing = true
			t.pushElement(name)
			if t.err != nil {
				return Token{}, t.err
			}
			t.pendingEnd = name
			t.hasPending = true
			if t.reuseAttrs {
				t.attrs = tok.Attrs
			}
			return tok, nil
		default:
			t.unreadByte()
			attr, err := t.readAttr()
			if err != nil {
				return Token{}, err
			}
			for _, a := range tok.Attrs {
				if a.Name == attr.Name {
					return Token{}, t.syntaxErr("duplicate attribute %q in tag <%s>", attr.Name, name)
				}
			}
			if len(tok.Attrs) >= MaxAttrs {
				return Token{}, t.syntaxErr("too many attributes in tag <%s>", name)
			}
			tok.Attrs = append(tok.Attrs, attr)
		}
	}
}

func (t *Tokenizer) pushElement(name Name) {
	if t.rootClosed {
		t.syntaxErr("second root element <%s>", name)
		return
	}
	if len(t.open) >= MaxDepth {
		t.syntaxErr("element nesting exceeds depth %d", MaxDepth)
		return
	}
	t.sawRoot = true
	t.open = append(t.open, name)
}

func (t *Tokenizer) popElement(name Name) {
	t.open = t.open[:len(t.open)-1]
	if len(t.open) == 0 {
		t.rootClosed = true
	}
	_ = name
}

// readEndTag parses "</name>"; the "</" has been consumed.
func (t *Tokenizer) readEndTag() (Token, error) {
	raw, err := t.readRawName()
	if err != nil {
		return Token{}, err
	}
	name := InternName(raw)
	if err := t.skipSpace(); err != nil {
		return Token{}, t.syntaxErr("unexpected EOF in end tag </%s>", name)
	}
	c, err := t.readByte()
	if err != nil || c != '>' {
		return Token{}, t.syntaxErr("expected '>' in end tag </%s>", name)
	}
	if len(t.open) == 0 {
		return Token{}, t.syntaxErr("end tag </%s> with no open element", name)
	}
	if top := t.open[len(t.open)-1]; top != name {
		return Token{}, t.syntaxErr("end tag </%s> does not match <%s>", name, top)
	}
	t.popElement(name)
	return Token{Kind: KindEndElement, Name: name}, nil
}

// readBang handles "<!--", "<![CDATA[" and "<!DOCTYPE"; "<!" has been consumed.
func (t *Tokenizer) readBang() (Token, error) {
	c, err := t.peekByte()
	if err != nil {
		return Token{}, t.syntaxErr("unexpected EOF after '<!'")
	}
	switch c {
	case '-':
		return t.readComment()
	case '[':
		return t.readCDATA()
	default:
		return Token{}, t.syntaxErr("DOCTYPE and other declarations are not allowed")
	}
}

// readComment parses "<!-- ... -->"; "<!" has been consumed.
func (t *Tokenizer) readComment() (Token, error) {
	for _, want := range []byte("--") {
		c, err := t.readByte()
		if err != nil || c != want {
			return Token{}, t.syntaxErr("malformed comment open")
		}
	}
	t.buf = t.buf[:0]
	dashes := 0
	for {
		c, err := t.readByte()
		if err != nil {
			return Token{}, t.syntaxErr("unterminated comment")
		}
		if c == '-' {
			dashes++
			if dashes > 2 {
				return Token{}, t.syntaxErr("'--' not allowed inside comment")
			}
			continue
		}
		if dashes == 2 {
			if c != '>' {
				return Token{}, t.syntaxErr("'--' not allowed inside comment")
			}
			return Token{Kind: KindComment, Text: string(t.buf)}, nil
		}
		for ; dashes > 0; dashes-- {
			t.buf = append(t.buf, '-')
		}
		t.buf = append(t.buf, c)
		if len(t.buf) > MaxTokenBytes {
			return Token{}, t.syntaxErr("comment exceeds %d bytes", MaxTokenBytes)
		}
	}
}

// readCDATA parses "<![CDATA[ ... ]]>"; "<!" has been consumed. The content
// is returned as a text token.
func (t *Tokenizer) readCDATA() (Token, error) {
	for _, want := range []byte("[CDATA[") {
		c, err := t.readByte()
		if err != nil || c != want {
			return Token{}, t.syntaxErr("malformed CDATA open")
		}
	}
	if len(t.open) == 0 {
		return Token{}, t.syntaxErr("CDATA outside root element")
	}
	t.buf = t.buf[:0]
	brackets := 0
	for {
		c, err := t.readByte()
		if err != nil {
			return Token{}, t.syntaxErr("unterminated CDATA section")
		}
		switch {
		case c == ']':
			if brackets == 2 {
				// "]]]" — emit one pending ']'.
				t.buf = append(t.buf, ']')
			} else {
				brackets++
			}
		case c == '>' && brackets == 2:
			if t.rawText {
				return Token{Kind: KindText}, nil
			}
			return Token{Kind: KindText, Text: string(t.buf)}, nil
		default:
			for ; brackets > 0; brackets-- {
				t.buf = append(t.buf, ']')
			}
			t.buf = append(t.buf, c)
		}
		if len(t.buf) > MaxTokenBytes {
			return Token{}, t.syntaxErr("CDATA exceeds %d bytes", MaxTokenBytes)
		}
	}
}

// readProcInst parses "<?target data?>"; "<?" has been consumed.
func (t *Tokenizer) readProcInst() (Token, error) {
	target, err := t.readName()
	if err != nil {
		return Token{}, err
	}
	t.buf = t.buf[:0]
	question := false
	first := true
	for {
		c, err := t.readByte()
		if err != nil {
			return Token{}, t.syntaxErr("unterminated processing instruction")
		}
		if first && !isSpaceByte(c) && c != '?' {
			return Token{}, t.syntaxErr("malformed processing instruction")
		}
		first = false
		if question && c == '>' {
			// Trim the separator whitespace on the raw bytes, then convert
			// once — the old code materialized the untrimmed string first
			// and trimmed the copy, paying for the data twice.
			b := t.buf
			for len(b) > 0 && isSpaceByte(b[0]) {
				b = b[1:]
			}
			if t.rawText {
				// Raw mode extends to processing instructions: both hot
				// consumers (the DOM builder and the SOAP stream decoder)
				// discard the XML declaration, so don't materialize it.
				t.buf = t.buf[:copy(t.buf, b)]
				return Token{Kind: KindProcInst, Target: target}, nil
			}
			return Token{Kind: KindProcInst, Target: target, Text: string(b)}, nil
		}
		if question {
			t.buf = append(t.buf, '?')
			question = false
		}
		if c == '?' {
			question = true
		} else {
			t.buf = append(t.buf, c)
		}
		if len(t.buf) > MaxTokenBytes {
			return Token{}, t.syntaxErr("processing instruction exceeds %d bytes", MaxTokenBytes)
		}
	}
}

// readRawName reads an XML name (element, attribute or PI target) into the
// scratch buffer. The returned slice is valid until the buffer's next use;
// callers convert it immediately via Intern/InternName.
func (t *Tokenizer) readRawName() ([]byte, error) {
	t.buf = t.buf[:0]
	for {
		c, err := t.readByte()
		if err != nil {
			return nil, t.syntaxErr("unexpected EOF in name")
		}
		if isNameByte(c, len(t.buf) == 0) {
			t.buf = append(t.buf, c)
			continue
		}
		t.unreadByte()
		break
	}
	if len(t.buf) == 0 {
		return nil, t.syntaxErr("expected a name")
	}
	return t.buf, nil
}

// readName is readRawName interned to a string.
func (t *Tokenizer) readName() (string, error) {
	raw, err := t.readRawName()
	if err != nil {
		return "", err
	}
	return Intern(raw), nil
}

// readAttr parses one name="value" pair. Both the name and the value are
// interned: attribute values on SOAP traffic are overwhelmingly namespace
// URIs and type QNames that repeat on every message.
func (t *Tokenizer) readAttr() (Attr, error) {
	raw, err := t.readRawName()
	if err != nil {
		return Attr{}, err
	}
	name := InternName(raw)
	if err := t.skipSpace(); err != nil {
		return Attr{}, t.syntaxErr("unexpected EOF after attribute name %q", name)
	}
	c, err := t.readByte()
	if err != nil || c != '=' {
		return Attr{}, t.syntaxErr("expected '=' after attribute name %q", name)
	}
	if err := t.skipSpace(); err != nil {
		return Attr{}, t.syntaxErr("unexpected EOF after '='")
	}
	quote, err := t.readByte()
	if err != nil || (quote != '"' && quote != '\'') {
		return Attr{}, t.syntaxErr("attribute value for %q must be quoted", name)
	}
	t.val = t.val[:0]
	for {
		c, err := t.readByte()
		if err != nil {
			return Attr{}, t.syntaxErr("unterminated attribute value for %q", name)
		}
		if c == quote {
			break
		}
		switch c {
		case '&':
			r, err := t.readEntity()
			if err != nil {
				return Attr{}, err
			}
			t.val = utf8.AppendRune(t.val, r)
		case '<':
			return Attr{}, t.syntaxErr("'<' not allowed in attribute value")
		case '\t', '\n', '\r':
			// Attribute-value normalization per XML 1.0 3.3.3.
			t.val = append(t.val, ' ')
		default:
			t.val = append(t.val, c)
		}
		if len(t.val) > MaxTokenBytes {
			return Attr{}, t.syntaxErr("attribute value exceeds %d bytes", MaxTokenBytes)
		}
	}
	return Attr{Name: name, Value: Intern(t.val)}, nil
}

// skipSpace consumes whitespace. It returns io.EOF if input ends.
func (t *Tokenizer) skipSpace() error {
	for {
		c, err := t.peekByte()
		if err != nil {
			return err
		}
		if !isSpaceByte(c) {
			return nil
		}
		if _, err := t.readByte(); err != nil {
			return err
		}
	}
}

func isSpaceByte(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\n'
}

// isNameByte reports whether c may appear in an XML name. Multi-byte UTF-8
// sequences are accepted wholesale (bytes >= 0x80), which admits all
// non-ASCII name characters; this is deliberately permissive, matching what
// SOAP toolkits of the era accepted.
func isNameByte(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= 0x80:
		return true
	case first:
		return false
	case c >= '0' && c <= '9', c == '-', c == '.':
		return true
	}
	return false
}
