package xmltext

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

// drainTokens renders a token stream into a comparable string.
func drainTokens(tk *Tokenizer) (string, error) {
	var b strings.Builder
	for {
		tok, err := tk.Next()
		if err == io.EOF {
			return b.String(), nil
		}
		if err != nil {
			return "", err
		}
		switch tok.Kind {
		case KindStartElement:
			fmt.Fprintf(&b, "<%s", tok.Name.Local)
			for _, a := range tok.Attrs {
				fmt.Fprintf(&b, " %s=%q", a.Name.Local, a.Value)
			}
			b.WriteString(">")
		case KindEndElement:
			fmt.Fprintf(&b, "</%s>", tok.Name.Local)
		case KindText:
			b.WriteString(tok.Text)
			b.Write(tk.TokenBytes())
		case KindProcInst:
			fmt.Fprintf(&b, "?%s[%s%s]", tok.Target, tok.Text, tk.TokenBytes())
		}
	}
}

// TestTokenizerPoolRecycling hammers the pooled tokenizer from many
// goroutines with distinct documents and checks every stream matches a
// fresh tokenizer over the same bytes — run with -race, this doubles as
// the pool's data-race check.
func TestTokenizerPoolRecycling(t *testing.T) {
	const workers, rounds = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				doc := fmt.Sprintf(`<?xml version="1.0"?><d n="%d-%d"><x>payload %d &amp; %d</x></d>`, w, r, w, r)
				pooled := AcquireTokenizer([]byte(doc))
				pooled.SetRawText(true)
				got, err := drainTokens(pooled)
				ReleaseTokenizer(pooled)
				if err != nil {
					t.Errorf("worker %d round %d: pooled: %v", w, r, err)
					return
				}

				fresh := NewTokenizer(strings.NewReader(doc))
				fresh.SetRawText(true)
				want, err := drainTokens(fresh)
				if err != nil {
					t.Errorf("worker %d round %d: fresh: %v", w, r, err)
					return
				}
				if got != want {
					t.Errorf("worker %d round %d: pooled stream %q, fresh %q", w, r, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestTokenizerResetClearsState checks that state from a failed parse (open
// elements, sticky error, truncated tag) does not leak into the next
// document through the pool.
func TestTokenizerResetClearsState(t *testing.T) {
	tk := AcquireTokenizer([]byte(`<a><b att="v"`)) // truncated mid-tag
	for {
		if _, err := tk.Next(); err != nil {
			break
		}
	}
	ReleaseTokenizer(tk)

	tk2 := AcquireTokenizer([]byte(`<ok/>`))
	defer ReleaseTokenizer(tk2)
	tok, err := tk2.Next()
	if err != nil || tok.Kind != KindStartElement || tok.Name.Local != "ok" {
		t.Fatalf("after recycled failure: tok %+v err %v", tok, err)
	}
}

// TestTokenizerRawProcInst pins raw mode's ProcInst contract: Text stays
// empty and the declaration's content is readable through TokenBytes.
func TestTokenizerRawProcInst(t *testing.T) {
	const doc = `<?xml version="1.0" encoding="UTF-8"?><a/>`
	tk := NewTokenizer(strings.NewReader(doc))
	tk.SetRawText(true)
	tok, err := tk.Next()
	if err != nil || tok.Kind != KindProcInst {
		t.Fatalf("first token: %+v err %v", tok, err)
	}
	if tok.Text != "" {
		t.Errorf("raw mode materialized ProcInst text %q", tok.Text)
	}
	if got := string(tk.TokenBytes()); got != `version="1.0" encoding="UTF-8"` {
		t.Errorf("TokenBytes = %q", got)
	}

	plain := NewTokenizer(strings.NewReader(doc))
	ptok, err := plain.Next()
	if err != nil || ptok.Text != `version="1.0" encoding="UTF-8"` {
		t.Errorf("materialized mode: %+v err %v", ptok, err)
	}
}
