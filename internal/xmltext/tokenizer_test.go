package xmltext

import (
	"io"
	"strings"
	"testing"
)

// drain reads all tokens from the input, failing the test on error.
func drain(t *testing.T, src string) []Token {
	t.Helper()
	tk := NewTokenizer(strings.NewReader(src))
	var toks []Token
	for {
		tok, err := tk.Next()
		if err == io.EOF {
			return toks
		}
		if err != nil {
			t.Fatalf("Next(): %v (tokens so far: %v)", err, toks)
		}
		toks = append(toks, tok)
	}
}

// expectErr asserts that tokenizing src fails with a SyntaxError whose
// message contains want.
func expectErr(t *testing.T, src, want string) {
	t.Helper()
	tk := NewTokenizer(strings.NewReader(src))
	for {
		_, err := tk.Next()
		if err == io.EOF {
			t.Fatalf("tokenizing %q succeeded, want error containing %q", src, want)
		}
		if err != nil {
			se, ok := err.(*SyntaxError)
			if !ok {
				t.Fatalf("error %v is %T, want *SyntaxError", err, err)
			}
			if !strings.Contains(se.Msg, want) {
				t.Fatalf("error %q does not contain %q", se.Msg, want)
			}
			return
		}
	}
}

func TestTokenizeSimpleElement(t *testing.T) {
	toks := drain(t, `<a>hi</a>`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens, want 3: %v", len(toks), toks)
	}
	if toks[0].Kind != KindStartElement || toks[0].Name.Local != "a" {
		t.Errorf("token 0 = %+v, want start <a>", toks[0])
	}
	if toks[1].Kind != KindText || toks[1].Text != "hi" {
		t.Errorf("token 1 = %+v, want text %q", toks[1], "hi")
	}
	if toks[2].Kind != KindEndElement || toks[2].Name.Local != "a" {
		t.Errorf("token 2 = %+v, want end </a>", toks[2])
	}
}

func TestTokenizeSelfClosing(t *testing.T) {
	toks := drain(t, `<a/>`)
	if len(toks) != 2 {
		t.Fatalf("got %d tokens, want 2", len(toks))
	}
	if !toks[0].SelfClosing {
		t.Error("start token not marked self-closing")
	}
	if toks[1].Kind != KindEndElement {
		t.Errorf("second token = %v, want synthetic EndElement", toks[1])
	}
}

func TestTokenizeAttributes(t *testing.T) {
	toks := drain(t, `<a x="1" ns:y='two &amp; three' empty=""/>`)
	at := toks[0].Attrs
	if len(at) != 3 {
		t.Fatalf("got %d attrs, want 3", len(at))
	}
	if at[0].Name != (Name{Local: "x"}) || at[0].Value != "1" {
		t.Errorf("attr 0 = %+v", at[0])
	}
	if at[1].Name != (Name{Prefix: "ns", Local: "y"}) || at[1].Value != "two & three" {
		t.Errorf("attr 1 = %+v", at[1])
	}
	if at[2].Value != "" {
		t.Errorf("attr 2 value = %q, want empty", at[2].Value)
	}
	if v, ok := toks[0].Attr(Name{Prefix: "ns", Local: "y"}); !ok || v != "two & three" {
		t.Errorf("Attr lookup = %q, %v", v, ok)
	}
	if _, ok := toks[0].Attr(Name{Local: "nope"}); ok {
		t.Error("Attr lookup found a missing attribute")
	}
}

func TestTokenizePrefixedNames(t *testing.T) {
	toks := drain(t, `<SOAP-ENV:Envelope xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/"></SOAP-ENV:Envelope>`)
	want := Name{Prefix: "SOAP-ENV", Local: "Envelope"}
	if toks[0].Name != want {
		t.Errorf("name = %v, want %v", toks[0].Name, want)
	}
	if toks[0].Name.String() != "SOAP-ENV:Envelope" {
		t.Errorf("String() = %q", toks[0].Name.String())
	}
}

func TestTokenizeEntities(t *testing.T) {
	toks := drain(t, `<a>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;&#x4e2d;</a>`)
	want := `<>&"'AB中`
	if toks[1].Text != want {
		t.Errorf("text = %q, want %q", toks[1].Text, want)
	}
}

func TestTokenizeCDATA(t *testing.T) {
	toks := drain(t, `<a><![CDATA[<not & markup> ]] ]]]></a>`)
	want := `<not & markup> ]] ]`
	if toks[1].Text != want {
		t.Errorf("text = %q, want %q", toks[1].Text, want)
	}
}

func TestTokenizeComment(t *testing.T) {
	toks := drain(t, `<a><!-- hello - world --></a>`)
	if toks[1].Kind != KindComment || toks[1].Text != " hello - world " {
		t.Errorf("token = %+v", toks[1])
	}
}

func TestTokenizeDeclaration(t *testing.T) {
	toks := drain(t, "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<a/>")
	if toks[0].Kind != KindProcInst || toks[0].Target != "xml" {
		t.Errorf("token 0 = %+v, want xml declaration", toks[0])
	}
	if !strings.Contains(toks[0].Text, `version="1.0"`) {
		t.Errorf("declaration text = %q", toks[0].Text)
	}
}

func TestTokenizeWhitespaceHandling(t *testing.T) {
	toks := drain(t, "  \n <a> <b/> </a> \n")
	// Whitespace outside the root is skipped; inside it is preserved.
	kinds := make([]Kind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.Kind
	}
	want := []Kind{KindStartElement, KindText, KindStartElement, KindEndElement, KindText, KindEndElement}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
}

func TestTokenizeNestedDepth(t *testing.T) {
	var b strings.Builder
	const depth = 100
	for i := 0; i < depth; i++ {
		b.WriteString("<a>")
	}
	for i := 0; i < depth; i++ {
		b.WriteString("</a>")
	}
	toks := drain(t, b.String())
	if len(toks) != 2*depth {
		t.Fatalf("got %d tokens, want %d", len(toks), 2*depth)
	}
}

func TestTokenizeErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`<a></b>`, "does not match"},
		{`<a>`, "not closed"},
		{`</a>`, "no open element"},
		{`<a><a/>`, "not closed"},
		{`<a/><b/>`, "root element"},
		{`text`, "character data outside root"},
		{`<a>&bogus;</a>`, "unknown entity"},
		{`<a>&#xZZ;</a>`, "bad character reference"},
		{`<a>&#0;</a>`, "not a valid XML character"},
		{`<a x=1/>`, "must be quoted"},
		{`<a x="1" x="2"/>`, "duplicate attribute"},
		{`<a x="<"/>`, "'<' not allowed"},
		{`<!DOCTYPE html><a/>`, "DOCTYPE"},
		{`<a><!-- -- --></a>`, "'--' not allowed"},
		{`<a`, "unexpected EOF"},
		{``, "no root element"},
		{`<a/>trailing`, "character data outside root"},
		{`<a><![CDATA[x]]</a>`, "unterminated CDATA"},
		{`<>`, "expected a name"},
	}
	for _, c := range cases {
		expectErr(t, c.src, c.want)
	}
}

func TestTokenizerStickyError(t *testing.T) {
	tk := NewTokenizer(strings.NewReader(`<a></b>`))
	if _, err := tk.Next(); err != nil {
		t.Fatalf("first token: %v", err)
	}
	_, err1 := tk.Next()
	if err1 == nil {
		t.Fatal("expected error")
	}
	_, err2 := tk.Next()
	if err1 != err2 {
		t.Errorf("errors differ: %v vs %v", err1, err2)
	}
}

func TestTokenizerMaxDepth(t *testing.T) {
	var b strings.Builder
	for i := 0; i < MaxDepth+1; i++ {
		b.WriteString("<a>")
	}
	expectErr(t, b.String(), "nesting exceeds")
}

func TestTokenizerPositions(t *testing.T) {
	tk := NewTokenizer(strings.NewReader("<a>\n  <b></c>\n</a>"))
	var err error
	for err == nil {
		_, err = tk.Next()
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error = %v, want *SyntaxError", err)
	}
	if se.Pos.Line != 2 {
		t.Errorf("error line = %d, want 2", se.Pos.Line)
	}
}

func TestTokenizeProcInst(t *testing.T) {
	toks := drain(t, `<?pi some data?><a/>`)
	if toks[0].Kind != KindProcInst || toks[0].Target != "pi" || toks[0].Text != "some data" {
		t.Errorf("token = %+v", toks[0])
	}
}

func TestTokenizeUTF8Text(t *testing.T) {
	toks := drain(t, "<a>北京 — Beijing</a>")
	if toks[1].Text != "北京 — Beijing" {
		t.Errorf("text = %q", toks[1].Text)
	}
}

func TestParseName(t *testing.T) {
	if n := ParseName("a:b"); n != (Name{Prefix: "a", Local: "b"}) {
		t.Errorf("ParseName(a:b) = %v", n)
	}
	if n := ParseName("b"); n != (Name{Local: "b"}) {
		t.Errorf("ParseName(b) = %v", n)
	}
	if !(Name{}).IsZero() {
		t.Error("zero Name not IsZero")
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindInvalid, KindStartElement, KindEndElement, KindText, KindComment, KindProcInst}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("Kind(%d).String() empty", k)
		}
	}
}

func TestTokenizeAttrValueNormalization(t *testing.T) {
	toks := drain(t, "<a x=\"one\ttwo\nthree\"/>")
	if got := toks[0].Attrs[0].Value; got != "one two three" {
		t.Errorf("normalized value = %q, want %q", got, "one two three")
	}
}
