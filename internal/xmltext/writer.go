package xmltext

import (
	"bufio"
	"fmt"
	"io"
)

// Writer emits well-formed XML token by token. It is the inverse of
// Tokenizer: the byte stream it produces tokenizes back to the same logical
// document.
//
// A Writer tracks open elements and refuses to produce mismatched tags. All
// text and attribute values are escaped automatically. Errors are sticky:
// after the first failure every method is a no-op and Flush reports the
// error, so call sites can emit a whole document and check once.
type Writer struct {
	w      *bufio.Writer
	err    error
	stack  []Name
	indent string // "" means compact output
	// inOpenTag is true after StartElement until the '>' is written, which
	// happens lazily so self-closing tags can be detected.
	inOpenTag bool
	openName  Name
	openAttrs []Attr
	// hadChildren tracks whether the current element has any child content,
	// for indentation decisions.
	hadText bool
	// startedDoc is true once anything has been emitted, so indentation
	// never inserts a leading newline before the root element.
	startedDoc bool
}

// NewWriter returns a Writer emitting compact (no extra whitespace) XML to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 16<<10)}
}

// NewIndentWriter returns a Writer that indents nested elements with the
// given unit string (e.g. two spaces). Indentation is for human-facing
// output only; it inserts whitespace text nodes between elements.
func NewIndentWriter(w io.Writer, indent string) *Writer {
	nw := NewWriter(w)
	nw.indent = indent
	return nw
}

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

func (w *Writer) setErr(err error) {
	if w.err == nil && err != nil {
		w.err = err
	}
}

func (w *Writer) writeString(s string) {
	if w.err != nil {
		return
	}
	_, err := w.w.WriteString(s)
	w.setErr(err)
}

func (w *Writer) writeByte(c byte) {
	if w.err != nil {
		return
	}
	w.setErr(w.w.WriteByte(c))
}

// Declaration writes the standard XML 1.0 declaration. It must come first.
func (w *Writer) Declaration() {
	if len(w.stack) > 0 || w.inOpenTag {
		w.setErr(fmt.Errorf("xmltext: declaration not at start of document"))
		return
	}
	w.writeString(`<?xml version="1.0" encoding="UTF-8"?>`)
	w.startedDoc = true
}

// flushOpenTag completes a pending start tag. selfClose selects "/>".
func (w *Writer) flushOpenTag(selfClose bool) {
	if !w.inOpenTag {
		return
	}
	w.writeByte('<')
	w.writeString(w.openName.String())
	for _, a := range w.openAttrs {
		w.writeByte(' ')
		w.writeString(a.Name.String())
		w.writeString(`="`)
		w.writeString(EscapeAttr(a.Value))
		w.writeByte('"')
	}
	if selfClose {
		w.writeString("/>")
	} else {
		w.writeByte('>')
	}
	w.inOpenTag = false
	w.openAttrs = w.openAttrs[:0]
}

func (w *Writer) newlineIndent(depth int) {
	if w.indent == "" {
		return
	}
	w.writeByte('\n')
	for i := 0; i < depth; i++ {
		w.writeString(w.indent)
	}
}

// StartElement opens an element. Its tag bytes are emitted lazily so that
// an immediately following EndElement produces a self-closing tag.
func (w *Writer) StartElement(name Name, attrs ...Attr) {
	if w.err != nil {
		return
	}
	if name.Local == "" {
		w.setErr(fmt.Errorf("xmltext: empty element name"))
		return
	}
	if w.inOpenTag {
		w.flushOpenTag(false)
	}
	if w.startedDoc && !w.hadText {
		w.newlineIndent(len(w.stack))
	}
	w.startedDoc = true
	w.stack = append(w.stack, name)
	w.inOpenTag = true
	w.openName = name
	w.openAttrs = append(w.openAttrs, attrs...)
	w.hadText = false
}

// Attr adds an attribute to the element opened by the preceding
// StartElement. It must be called before any content is written.
func (w *Writer) Attr(name Name, value string) {
	if w.err != nil {
		return
	}
	if !w.inOpenTag {
		w.setErr(fmt.Errorf("xmltext: Attr(%s) outside of start tag", name))
		return
	}
	w.openAttrs = append(w.openAttrs, Attr{Name: name, Value: value})
}

// EndElement closes the most recently opened element.
func (w *Writer) EndElement() {
	if w.err != nil {
		return
	}
	if len(w.stack) == 0 {
		w.setErr(fmt.Errorf("xmltext: EndElement with no open element"))
		return
	}
	name := w.stack[len(w.stack)-1]
	w.stack = w.stack[:len(w.stack)-1]
	if w.inOpenTag {
		w.flushOpenTag(true)
		w.hadText = false
		return
	}
	if !w.hadText {
		w.newlineIndent(len(w.stack))
	}
	w.writeString("</")
	w.writeString(name.String())
	w.writeByte('>')
	w.hadText = false
}

// Text writes escaped character data inside the current element.
func (w *Writer) Text(s string) {
	if w.err != nil {
		return
	}
	if len(w.stack) == 0 {
		w.setErr(fmt.Errorf("xmltext: text outside root element"))
		return
	}
	w.flushOpenTag(false)
	w.writeString(EscapeText(s))
	w.hadText = true
}

// Comment writes an XML comment. The body must not contain "--".
func (w *Writer) Comment(s string) {
	if w.err != nil {
		return
	}
	for i := 0; i+1 < len(s); i++ {
		if s[i] == '-' && s[i+1] == '-' {
			w.setErr(fmt.Errorf("xmltext: comment contains %q", "--"))
			return
		}
	}
	w.flushOpenTag(false)
	w.newlineIndent(len(w.stack))
	w.writeString("<!--")
	w.writeString(s)
	w.writeString("-->")
}

// WriteToken writes a token produced by a Tokenizer, enabling streaming
// copy/transform pipelines.
func (w *Writer) WriteToken(tok Token) {
	switch tok.Kind {
	case KindStartElement:
		w.StartElement(tok.Name, tok.Attrs...)
		if tok.SelfClosing {
			// The matching synthetic EndElement will arrive next; nothing
			// special to do because tags are emitted lazily.
		}
	case KindEndElement:
		w.EndElement()
	case KindText:
		w.Text(tok.Text)
	case KindComment:
		w.Comment(tok.Text)
	case KindProcInst:
		w.flushOpenTag(false)
		w.writeString("<?")
		w.writeString(tok.Target)
		if tok.Text != "" {
			w.writeByte(' ')
			w.writeString(tok.Text)
		}
		w.writeString("?>")
	default:
		w.setErr(fmt.Errorf("xmltext: cannot write token of kind %v", tok.Kind))
	}
}

// Flush completes the document and flushes buffered output. It fails if any
// element is still open or any earlier call failed.
func (w *Writer) Flush() error {
	if w.err == nil && (len(w.stack) > 0 || w.inOpenTag) {
		w.setErr(fmt.Errorf("xmltext: Flush with %d unclosed element(s)", len(w.stack)))
	}
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}
