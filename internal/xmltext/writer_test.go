package xmltext

import (
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestWriterSimple(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	w.Declaration()
	w.StartElement(Name{Local: "a"}, Attr{Name: Name{Local: "x"}, Value: `1 & "two"`})
	w.Text("hi <there>")
	w.StartElement(Name{Prefix: "p", Local: "b"})
	w.EndElement()
	w.EndElement()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := `<?xml version="1.0" encoding="UTF-8"?><a x="1 &amp; &quot;two&quot;">hi &lt;there&gt;<p:b/></a>`
	if b.String() != want {
		t.Errorf("got  %q\nwant %q", b.String(), want)
	}
}

func TestWriterMismatch(t *testing.T) {
	w := NewWriter(io.Discard)
	w.StartElement(Name{Local: "a"})
	w.EndElement()
	w.EndElement()
	if err := w.Flush(); err == nil {
		t.Error("extra EndElement not reported")
	}
}

func TestWriterUnclosed(t *testing.T) {
	w := NewWriter(io.Discard)
	w.StartElement(Name{Local: "a"})
	if err := w.Flush(); err == nil {
		t.Error("unclosed element not reported")
	}
}

func TestWriterEmptyName(t *testing.T) {
	w := NewWriter(io.Discard)
	w.StartElement(Name{})
	if err := w.Flush(); err == nil {
		t.Error("empty element name not reported")
	}
}

func TestWriterTextOutsideRoot(t *testing.T) {
	w := NewWriter(io.Discard)
	w.Text("oops")
	if err := w.Flush(); err == nil {
		t.Error("text outside root not reported")
	}
}

func TestWriterAttrMethod(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	w.StartElement(Name{Local: "a"})
	w.Attr(Name{Local: "k"}, "v")
	w.EndElement()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if b.String() != `<a k="v"/>` {
		t.Errorf("got %q", b.String())
	}

	w2 := NewWriter(io.Discard)
	w2.StartElement(Name{Local: "a"})
	w2.Text("x")
	w2.Attr(Name{Local: "late"}, "v")
	w2.EndElement()
	if err := w2.Flush(); err == nil {
		t.Error("late Attr not reported")
	}
}

func TestWriterCommentValidation(t *testing.T) {
	w := NewWriter(io.Discard)
	w.StartElement(Name{Local: "a"})
	w.Comment("bad -- comment")
	w.EndElement()
	if err := w.Flush(); err == nil {
		t.Error("comment containing -- not reported")
	}
}

func TestWriterIndent(t *testing.T) {
	var b strings.Builder
	w := NewIndentWriter(&b, "  ")
	w.StartElement(Name{Local: "a"})
	w.StartElement(Name{Local: "b"})
	w.Text("x")
	w.EndElement()
	w.EndElement()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "<a>\n  <b>x</b>\n</a>"
	if b.String() != want {
		t.Errorf("got  %q\nwant %q", b.String(), want)
	}
}

// roundTrip serializes a small token program and re-tokenizes it, comparing
// logical content.
func TestWriterTokenizerRoundTrip(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	w.StartElement(Name{Local: "root"}, Attr{Name: Name{Local: "attr"}, Value: "a<b&c\"d'e\tf\ng"})
	w.Text("text with 中文 & entities <>")
	w.StartElement(Name{Prefix: "ns", Local: "child"})
	w.Text("inner")
	w.EndElement()
	w.Comment(" a comment ")
	w.EndElement()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	toks := drain(t, b.String())
	if toks[0].Attrs[0].Value != "a<b&c\"d'e\tf\ng" {
		t.Errorf("attr round trip = %q", toks[0].Attrs[0].Value)
	}
	if toks[1].Text != "text with 中文 & entities <>" {
		t.Errorf("text round trip = %q", toks[1].Text)
	}
}

// sanitizeXMLString replaces characters that XML cannot represent (and so
// the writer deliberately replaces with U+FFFD) so quick-generated strings
// become representable.
func sanitizeXMLString(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r == utf8.RuneError || !isValidXMLChar(r) {
			b.WriteRune(' ')
		} else {
			b.WriteRune(r)
		}
	}
	return strings.ToValidUTF8(b.String(), " ")
}

// Property: any representable string survives text escape -> tokenize.
func TestQuickTextRoundTrip(t *testing.T) {
	f := func(raw string) bool {
		s := sanitizeXMLString(raw)
		var b strings.Builder
		w := NewWriter(&b)
		w.StartElement(Name{Local: "t"})
		w.Text(s)
		w.EndElement()
		if err := w.Flush(); err != nil {
			return false
		}
		tk := NewTokenizer(strings.NewReader(b.String()))
		var got strings.Builder
		for {
			tok, err := tk.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Logf("input %q -> %q: %v", s, b.String(), err)
				return false
			}
			if tok.Kind == KindText {
				got.WriteString(tok.Text)
			}
		}
		// \r is normalized to \n by XML line-end rules only in literal form;
		// our writer emits &#13; so it must round-trip exactly.
		return got.String() == s
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: any representable string survives attribute escape -> tokenize.
func TestQuickAttrRoundTrip(t *testing.T) {
	f := func(raw string) bool {
		s := sanitizeXMLString(raw)
		var b strings.Builder
		w := NewWriter(&b)
		w.StartElement(Name{Local: "t"}, Attr{Name: Name{Local: "a"}, Value: s})
		w.EndElement()
		if err := w.Flush(); err != nil {
			return false
		}
		tk := NewTokenizer(strings.NewReader(b.String()))
		tok, err := tk.Next()
		if err != nil {
			t.Logf("input %q -> %q: %v", s, b.String(), err)
			return false
		}
		v, ok := tok.Attr(Name{Local: "a"})
		return ok && v == s
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: escaping never produces raw markup characters.
func TestQuickEscapeProducesNoMarkup(t *testing.T) {
	f := func(s string) bool {
		esc := EscapeText(s)
		if strings.ContainsAny(esc, "<>") {
			return false
		}
		for i := 0; i < len(esc); i++ {
			if esc[i] == '&' {
				// must start an entity
				rest := esc[i:]
				if !strings.HasPrefix(rest, "&amp;") &&
					!strings.HasPrefix(rest, "&lt;") &&
					!strings.HasPrefix(rest, "&gt;") &&
					!strings.HasPrefix(rest, "&#") {
					return false
				}
			}
		}
		aesc := EscapeAttr(s)
		return !strings.ContainsAny(aesc, `<>"`)
	}
	cfg := &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestEscapeFastPath(t *testing.T) {
	s := "plain ascii text"
	if got := EscapeText(s); got != s {
		t.Errorf("EscapeText(%q) = %q", s, got)
	}
	if got := EscapeAttr(s); got != s {
		t.Errorf("EscapeAttr(%q) = %q", s, got)
	}
}

func TestEscapeSpecials(t *testing.T) {
	cases := []struct{ in, text, attr string }{
		{"a&b", "a&amp;b", "a&amp;b"},
		{"a<b>c", "a&lt;b&gt;c", "a&lt;b&gt;c"},
		{`q"q`, `q"q`, "q&quot;q"},
		{"a\rb", "a&#13;b", "a&#13;b"},
		{"a\tb\nc", "a\tb\nc", "a&#9;b&#10;c"},
		{"中文", "中文", "中文"},
	}
	for _, c := range cases {
		if got := EscapeText(c.in); got != c.text {
			t.Errorf("EscapeText(%q) = %q, want %q", c.in, got, c.text)
		}
		if got := EscapeAttr(c.in); got != c.attr {
			t.Errorf("EscapeAttr(%q) = %q, want %q", c.in, got, c.attr)
		}
	}
}

// Property: WriteToken(tokenize(doc)) reproduces an equivalent token stream.
func TestCopyThroughWriteToken(t *testing.T) {
	src := `<?xml version="1.0" encoding="UTF-8"?><r a="1"><b>text &amp; more</b><!--c--><d/></r>`
	toks := drain(t, src)
	var b strings.Builder
	w := NewWriter(&b)
	for _, tok := range toks {
		w.WriteToken(tok)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	toks2 := drain(t, b.String())
	if !reflect.DeepEqual(normalize(toks), normalize(toks2)) {
		t.Errorf("token streams differ:\n%v\n%v", toks, toks2)
	}
}

// normalize clears fields that may legitimately differ across a write cycle
// (self-closing form).
func normalize(toks []Token) []Token {
	out := make([]Token, len(toks))
	for i, tok := range toks {
		tok.SelfClosing = false
		if tok.Attrs != nil && len(tok.Attrs) == 0 {
			tok.Attrs = nil
		}
		out[i] = tok
	}
	return out
}
