// Package xmltext implements a streaming XML 1.0 tokenizer and writer.
//
// It is the lowest layer of the SOAP stack: everything above it (DOM,
// envelope codec, typed values) is built on the Token stream produced here.
// The tokenizer is a pull parser in the spirit of SAX: the caller repeatedly
// asks for the next token and decides what to do with it, so large documents
// never need to be held in memory at this layer.
//
// The dialect accepted is the subset of XML 1.0 that appears on the wire in
// SOAP exchanges: elements, attributes, character data, CDATA sections,
// comments, processing instructions and the XML declaration. DOCTYPE
// declarations are rejected (they are forbidden by the SOAP specification
// and are a classic denial-of-service vector).
package xmltext

import (
	"fmt"
	"strings"
)

// Name is a possibly-prefixed XML name as it appears in the document,
// e.g. "SOAP-ENV:Envelope" has Prefix "SOAP-ENV" and Local "Envelope".
// Namespace resolution (prefix to URI) is performed by package xmldom.
type Name struct {
	Prefix string
	Local  string
}

// String returns the name in prefix:local form.
func (n Name) String() string {
	if n.Prefix == "" {
		return n.Local
	}
	return n.Prefix + ":" + n.Local
}

// IsZero reports whether the name is empty.
func (n Name) IsZero() bool { return n.Prefix == "" && n.Local == "" }

// ParseName splits a raw XML name into prefix and local part.
// A name with no colon has an empty prefix.
func ParseName(raw string) Name {
	if i := strings.IndexByte(raw, ':'); i >= 0 {
		return Name{Prefix: raw[:i], Local: raw[i+1:]}
	}
	return Name{Local: raw}
}

// Attr is a single attribute of a start-element token. Values are stored
// fully unescaped.
type Attr struct {
	Name  Name
	Value string
}

// Kind identifies the type of a Token.
type Kind int

// Token kinds produced by the Tokenizer.
const (
	KindInvalid Kind = iota
	// KindStartElement is "<name attr=...>" or "<name/>"; see Token.SelfClosing.
	KindStartElement
	// KindEndElement is "</name>". Self-closing elements produce a synthetic
	// end token immediately after their start token.
	KindEndElement
	// KindText is character data between markup, fully unescaped.
	// CDATA sections are delivered as text.
	KindText
	// KindComment is "<!-- ... -->"; Text holds the comment body.
	KindComment
	// KindProcInst is "<?target data?>", including the XML declaration
	// (target "xml").
	KindProcInst
)

// String returns a human-readable kind name, for error messages and tests.
func (k Kind) String() string {
	switch k {
	case KindStartElement:
		return "StartElement"
	case KindEndElement:
		return "EndElement"
	case KindText:
		return "Text"
	case KindComment:
		return "Comment"
	case KindProcInst:
		return "ProcInst"
	default:
		return "Invalid"
	}
}

// Token is one lexical unit of the document.
type Token struct {
	Kind        Kind
	Name        Name   // element name, for Start/EndElement
	Attrs       []Attr // attributes, for StartElement
	Text        string // content, for Text/Comment/ProcInst
	Target      string // processing-instruction target, for ProcInst
	SelfClosing bool   // true for "<name/>"; a synthetic EndElement follows
}

// Attr returns the value of the attribute with the given raw name and
// whether it was present.
func (t *Token) Attr(name Name) (string, bool) {
	for _, a := range t.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Pos is a position in the input, for error reporting. Lines and columns
// are 1-based; columns count bytes, not runes.
type Pos struct {
	Line int
	Col  int
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// SyntaxError describes malformed XML input.
type SyntaxError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xmltext: syntax error at %s: %s", e.Pos, e.Msg)
}
