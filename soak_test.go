package spi_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	spi "repro"
	"repro/internal/bench"
	"repro/internal/services"
)

// TestSoak hammers a full deployment with a randomized mixture of every
// client interface — single calls, futures, explicit batches, execution
// plans and the auto-batcher — concurrently, against all deployed services.
// It is a leak/deadlock/corruption hunt: every call must resolve, every
// result must be self-consistent, and the server must stay healthy
// throughout. Skipped in -short mode.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	env, err := bench.NewEnv(bench.EnvOptions{Travel: true})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	auto := spi.NewAutoBatcher(env.Client, time.Millisecond, 64)
	defer auto.Close()

	const (
		workers  = 12
		opsEach  = 60
		deadline = 60 * time.Second
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*opsEach)
	done := make(chan struct{})

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsEach; i++ {
				payload := fmt.Sprintf("w%d-i%d", w, i)
				switch rng.Intn(5) {
				case 0: // plain call
					res, err := env.Client.Call("Echo", "echo", spi.F("data", payload))
					if err != nil {
						errs <- fmt.Errorf("call: %w", err)
						continue
					}
					if !spi.ValueEqual(res[0].Value, payload) {
						errs <- fmt.Errorf("call result mismatch: %v", res)
					}
				case 1: // future
					call := env.Client.Go("WeatherService", "GetWeather", spi.F("CityName", "Beijing"))
					if _, err := call.Wait(); err != nil {
						errs <- fmt.Errorf("go: %w", err)
					}
				case 2: // explicit batch across services
					b := env.Client.NewBatch()
					e := b.Add("Echo", "echo", spi.F("data", payload))
					q := b.Add("Airline1", "QueryFlights",
						spi.F("from", "A"), spi.F("to", "B"), spi.F("date", "2006-09-26"))
					if err := b.Send(); err != nil {
						errs <- fmt.Errorf("batch: %w", err)
						continue
					}
					if res, err := e.Wait(); err != nil || !spi.ValueEqual(res[0].Value, payload) {
						errs <- fmt.Errorf("batch echo: %v %v", res, err)
					}
					if res, err := q.Wait(); err != nil || len(res) == 0 {
						errs <- fmt.Errorf("batch query: %v %v", res, err)
					}
				case 3: // execution plan with a dependency
					p := env.Client.NewPlan()
					first := p.Add("Echo", "echo", spi.F("data", payload))
					second := p.Add("Echo", "echo", spi.F("data", first.Ref("data")))
					if err := p.Send(); err != nil {
						errs <- fmt.Errorf("plan: %w", err)
						continue
					}
					if res, err := second.Wait(); err != nil || !spi.ValueEqual(res[0].Value, payload) {
						errs <- fmt.Errorf("plan chain: %v %v", res, err)
					}
				default: // auto-batched call
					res, err := auto.Call("Echo", "echoSize", spi.F("data", payload))
					if err != nil {
						errs <- fmt.Errorf("auto: %w", err)
						continue
					}
					if !spi.ValueEqual(res[0].Value, int64(len(payload))) {
						errs <- fmt.Errorf("auto size: %v", res)
					}
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(deadline):
		t.Fatal("soak test deadlocked")
	}
	close(errs)
	n := 0
	for err := range errs {
		if n < 10 {
			t.Error(err)
		}
		n++
	}
	if n > 0 {
		t.Fatalf("%d errors total", n)
	}

	st := env.Server.Stats()
	if st.Requests < workers*opsEach {
		t.Errorf("server executed %d requests, expected >= %d", st.Requests, workers*opsEach)
	}
	if st.Faults != 0 {
		t.Errorf("server produced %d whole-message faults during clean soak", st.Faults)
	}
	// The travel suite remains usable afterwards.
	if _, err := services.RunTravelAgent(env.Client, services.DefaultItinerary(), true); err != nil {
		t.Errorf("travel agent after soak: %v", err)
	}
}
