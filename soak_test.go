package spi_test

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	spi "repro"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/services"
	"repro/internal/soap"
	"repro/internal/soapenc"
)

// TestSoak hammers a full deployment with a randomized mixture of every
// client interface — single calls, futures, explicit batches, execution
// plans and the auto-batcher — concurrently, against all deployed services.
// It is a leak/deadlock/corruption hunt: every call must resolve, every
// result must be self-consistent, and the server must stay healthy
// throughout. Skipped in -short mode.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	env, err := bench.NewEnv(bench.EnvOptions{Travel: true})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	auto := spi.NewAutoBatcher(env.Client, time.Millisecond, 64)
	defer auto.Close()

	const (
		workers  = 12
		opsEach  = 60
		deadline = 60 * time.Second
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*opsEach)
	done := make(chan struct{})

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsEach; i++ {
				payload := fmt.Sprintf("w%d-i%d", w, i)
				switch rng.Intn(5) {
				case 0: // plain call
					res, err := env.Client.Call("Echo", "echo", spi.F("data", payload))
					if err != nil {
						errs <- fmt.Errorf("call: %w", err)
						continue
					}
					if !spi.ValueEqual(res[0].Value, payload) {
						errs <- fmt.Errorf("call result mismatch: %v", res)
					}
				case 1: // future
					call := env.Client.Go("WeatherService", "GetWeather", spi.F("CityName", "Beijing"))
					if _, err := call.Wait(); err != nil {
						errs <- fmt.Errorf("go: %w", err)
					}
				case 2: // explicit batch across services
					b := env.Client.NewBatch()
					e := b.Add("Echo", "echo", spi.F("data", payload))
					q := b.Add("Airline1", "QueryFlights",
						spi.F("from", "A"), spi.F("to", "B"), spi.F("date", "2006-09-26"))
					if err := b.Send(); err != nil {
						errs <- fmt.Errorf("batch: %w", err)
						continue
					}
					if res, err := e.Wait(); err != nil || !spi.ValueEqual(res[0].Value, payload) {
						errs <- fmt.Errorf("batch echo: %v %v", res, err)
					}
					if res, err := q.Wait(); err != nil || len(res) == 0 {
						errs <- fmt.Errorf("batch query: %v %v", res, err)
					}
				case 3: // execution plan with a dependency
					p := env.Client.NewPlan()
					first := p.Add("Echo", "echo", spi.F("data", payload))
					second := p.Add("Echo", "echo", spi.F("data", first.Ref("data")))
					if err := p.Send(); err != nil {
						errs <- fmt.Errorf("plan: %w", err)
						continue
					}
					if res, err := second.Wait(); err != nil || !spi.ValueEqual(res[0].Value, payload) {
						errs <- fmt.Errorf("plan chain: %v %v", res, err)
					}
				default: // auto-batched call
					res, err := auto.Call("Echo", "echoSize", spi.F("data", payload))
					if err != nil {
						errs <- fmt.Errorf("auto: %w", err)
						continue
					}
					if !spi.ValueEqual(res[0].Value, int64(len(payload))) {
						errs <- fmt.Errorf("auto size: %v", res)
					}
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(deadline):
		t.Fatal("soak test deadlocked")
	}
	close(errs)
	n := 0
	for err := range errs {
		if n < 10 {
			t.Error(err)
		}
		n++
	}
	if n > 0 {
		t.Fatalf("%d errors total", n)
	}

	st := env.Server.Stats()
	if st.Requests < workers*opsEach {
		t.Errorf("server executed %d requests, expected >= %d", st.Requests, workers*opsEach)
	}
	if st.Faults != 0 {
		t.Errorf("server produced %d whole-message faults during clean soak", st.Faults)
	}
	// The travel suite remains usable afterwards.
	if _, err := services.RunTravelAgent(env.Client, services.DefaultItinerary(), true); err != nil {
		t.Errorf("travel agent after soak: %v", err)
	}
}

// churnBackend is one admin-enabled backend SPI server for the membership
// soak, standing on its own in-memory link.
type churnBackend struct {
	dial func() (net.Conn, error)
}

func newChurnBackend(t *testing.T) *churnBackend {
	t.Helper()
	link := netsim.NewLink(netsim.Fast())
	lis, err := link.Listen()
	if err != nil {
		t.Fatal(err)
	}
	c := registry.NewContainer()
	echo := c.MustAddService("Echo", "urn:spi:Echo", "soak echo")
	echo.MustRegister("echo", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		return params, nil
	}, "identity")
	echo.MarkIdempotent("echo")
	srv, err := core.NewServer(core.ServerConfig{
		Container: c, AppWorkers: 8, AppQueue: 64, AdminService: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close(); link.Close() })
	return &churnBackend{dial: link.Dial}
}

// TestSoakMembershipChurn keeps a packed workload flowing through a gateway
// whose membership set is churning the whole time: backends join, drain,
// resume and leave every few batches. The invariants are the drain
// contract's — no spi:id is ever lost or duplicated (every call resolves
// exactly once, with its own payload), failures surface only as the
// documented fault codes, and the fleet is fully healthy afterwards.
// Skipped in -short mode.
func TestSoakMembershipChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}

	var backends []gateway.BackendConfig
	for i := 0; i < 3; i++ {
		backends = append(backends, gateway.BackendConfig{
			Name: fmt.Sprintf("b%d", i), Dial: newChurnBackend(t).dial,
		})
	}
	meta := registry.NewContainer()
	metaEcho := meta.MustAddService("Echo", "urn:spi:Echo", "metadata only")
	metaEcho.MustRegister("echo", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		return params, nil
	}, "identity")
	metaEcho.MarkIdempotent("echo")

	gw, err := gateway.New(gateway.Config{
		Backends: backends,
		Policy:   gateway.Weighted,
		Registry: meta,
		Membership: gateway.MembershipConfig{
			Enabled:      true,
			PollInterval: 20 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	gwLink := netsim.NewLink(netsim.Fast())
	glis, err := gwLink.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go gw.Serve(glis)
	t.Cleanup(func() { gw.Close(); gwLink.Close() })

	waitStats := func(what string, cond func(gateway.Stats) bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if cond(gw.Stats()) {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("churn soak: timed out waiting for %s", what)
	}
	backendStat := func(st gateway.Stats, name string) (gateway.BackendStats, bool) {
		for _, bs := range st.Backends {
			if bs.Name == name {
				return bs, true
			}
		}
		return gateway.BackendStats{}, false
	}

	const workers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 256)
	var delivered, faulted atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli, err := core.NewClient(core.ClientConfig{Dial: gwLink.Dial, Timeout: 10 * time.Second})
			if err != nil {
				errCh <- err
				return
			}
			defer cli.Close()
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				b := cli.NewBatch()
				calls := make([]*core.Call, 8)
				for i := range calls {
					calls[i] = b.Add("Echo", "echo", soapenc.F("v", int64(w*1_000_000+iter*1_000+i)))
				}
				if err := b.Send(); err != nil {
					select {
					case errCh <- fmt.Errorf("worker %d send: %w", w, err):
					default:
					}
					return
				}
				for i, call := range calls {
					want := int64(w*1_000_000 + iter*1_000 + i)
					results, err := call.Wait()
					if err != nil {
						var f *soap.Fault
						ok := errors.As(err, &f) &&
							(f.Code == core.FaultCodeBusy || f.Code == core.FaultCodeTimeout || f.Code == core.FaultCodeCancelled)
						if !ok {
							select {
							case errCh <- fmt.Errorf("worker %d call %d failed outside the contract: %w", w, i, err):
							default:
							}
						} else {
							faulted.Add(1)
						}
						continue
					}
					if len(results) != 1 || !spi.ValueEqual(results[0].Value, want) {
						select {
						case errCh <- fmt.Errorf("worker %d call %d answered with %v, want %d", w, i, results, want):
						default:
						}
						continue
					}
					delivered.Add(1)
				}
			}
		}(w)
	}

	// The churn script: every step runs while the workload flows, and at
	// most one member is out of rotation at a time.
	rounds := 3
	joined := 0
	for r := 0; r < rounds; r++ {
		// Join a fresh backend.
		name := fmt.Sprintf("n%d", joined)
		joined++
		if err := gw.AddBackend(gateway.BackendConfig{Name: name, Dial: newChurnBackend(t).dial}); err != nil {
			t.Fatal(err)
		}
		waitStats(name+" to take traffic", func(st gateway.Stats) bool {
			bs, ok := backendStat(st, name)
			return ok && bs.Exchanges > 0
		})

		// Drain an original, hold it out, resume it.
		victim := fmt.Sprintf("b%d", r%3)
		if err := gw.DrainBackend(victim); err != nil {
			t.Fatal(err)
		}
		waitStats(victim+" drain to complete", func(st gateway.Stats) bool {
			bs, ok := backendStat(st, victim)
			return ok && bs.Draining && bs.InFlight == 0
		})
		time.Sleep(30 * time.Millisecond)
		if err := gw.ResumeBackend(victim); err != nil {
			t.Fatal(err)
		}
		waitStats(victim+" to take traffic after resume", func(st gateway.Stats) bool {
			bs, ok := backendStat(st, victim)
			return ok && !bs.Draining
		})

		// Leave: the joined backend is removed again mid-load.
		if err := gw.RemoveBackend(name); err != nil {
			t.Fatal(err)
		}
		waitStats(name+" to leave the stats", func(st gateway.Stats) bool {
			_, ok := backendStat(st, name)
			return !ok && len(st.Backends) == 3
		})
	}

	close(stop)
	wg.Wait()
	close(errCh)
	n := 0
	for err := range errCh {
		if n < 10 {
			t.Error(err)
		}
		n++
	}
	if n > 0 {
		t.Fatalf("%d contract violations total", n)
	}
	if delivered.Load() == 0 {
		t.Fatal("no calls delivered")
	}

	// After the churn: a clean batch must fully succeed and the in-flight
	// gauges must be back to zero.
	cli, err := core.NewClient(core.ClientConfig{Dial: gwLink.Dial, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	b := cli.NewBatch()
	calls := make([]*core.Call, 12)
	for i := range calls {
		calls[i] = b.Add("Echo", "echo", soapenc.F("v", int64(i)))
	}
	if err := b.Send(); err != nil {
		t.Fatal(err)
	}
	for i, call := range calls {
		results, err := call.Wait()
		if err != nil {
			t.Fatalf("clean call %d: %v", i, err)
		}
		if len(results) != 1 || !spi.ValueEqual(results[0].Value, int64(i)) {
			t.Fatalf("clean call %d results = %v", i, results)
		}
	}
	st := gw.Stats()
	var inflight int64
	for _, bs := range st.Backends {
		inflight += bs.InFlight
	}
	if inflight != 0 {
		t.Errorf("in-flight gauge leaked: %d", inflight)
	}
	t.Logf("membership churn soak: %d delivered, %d documented faults, drained=%d over %d rounds",
		delivered.Load(), faulted.Load(), st.Drained, rounds)
}

// TestSoakC10kPipelined holds ten thousand pipelined keep-alive
// connections open against one server and drives concurrent bursts over
// every one of them at once — the C10k regime the transport tier is built
// for. Every call carries a globally-unique payload and every packed batch
// tags its entries with spi:ids, so a lost, duplicated or cross-wired
// response anywhere in the pipelined read/write loops shows up as a value
// mismatch or a missing delivery. Skipped in -short mode.
func TestSoakC10kPipelined(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const (
		conns        = 10_000
		callsPerConn = 3
		dialWave     = 128 // netsim's accept backlog; a real SYN queue bound
	)

	link := netsim.NewLink(netsim.Fast())
	lis, err := link.Listen()
	if err != nil {
		t.Fatal(err)
	}
	c := registry.NewContainer()
	echo := c.MustAddService("Echo", "urn:spi:Echo", "soak echo")
	echo.MustRegister("echo", func(ctx *registry.Context, params []soapenc.Field) ([]soapenc.Field, error) {
		return params, nil
	}, "identity")
	srv, err := core.NewServer(core.ServerConfig{
		Container: c, AppWorkers: 16, AppQueue: 64 * 1024,
		PipelineWindow: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close(); link.Close() })

	// Establish the fleet in accept-backlog-sized waves; each client's
	// first call dials its one pipelined connection, which then stays open
	// for the rest of the soak.
	fleet := make([]*core.Client, conns)
	t.Cleanup(func() {
		for _, cl := range fleet {
			if cl != nil {
				cl.Close()
			}
		}
	})
	for lo := 0; lo < conns; lo += dialWave {
		hi := lo + dialWave
		if hi > conns {
			hi = conns
		}
		var wg sync.WaitGroup
		errCh := make(chan error, hi-lo)
		for i := lo; i < hi; i++ {
			cl, err := core.NewClient(core.ClientConfig{
				Dial: link.Dial, KeepAlive: true, Timeout: 120 * time.Second,
				Pipeline: true, PipelineWindow: 8,
			})
			if err != nil {
				t.Fatal(err)
			}
			fleet[i] = cl
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				want := int64(i)
				res, err := fleet[i].Call("Echo", "echo", soapenc.F("v", want))
				if err != nil {
					errCh <- fmt.Errorf("conn %d warm: %w", i, err)
					return
				}
				if len(res) != 1 || !spi.ValueEqual(res[0].Value, want) {
					errCh <- fmt.Errorf("conn %d warm answered %v, want %d", i, res, want)
				}
			}(i)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatal(err)
		}
	}

	// The burst: every connection fires its calls concurrently — tens of
	// thousands of exchanges in flight across ten thousand pipelined
	// connections. Every 10th connection sends a packed batch instead, so
	// the spi:id assembly path rides the same pipelined transport.
	var delivered atomic.Int64
	errCh := make(chan error, 256)
	var wg sync.WaitGroup
	for i := range fleet {
		if i%10 == 0 {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				b := fleet[i].NewBatch()
				calls := make([]*core.Call, 4)
				for j := range calls {
					calls[j] = b.Add("Echo", "echo", soapenc.F("v", int64(i*100+j)))
				}
				if err := b.Send(); err != nil {
					select {
					case errCh <- fmt.Errorf("conn %d batch: %w", i, err):
					default:
					}
					return
				}
				for j, call := range calls {
					want := int64(i*100 + j)
					res, err := call.Wait()
					if err != nil {
						select {
						case errCh <- fmt.Errorf("conn %d entry %d: %w", i, j, err):
						default:
						}
						continue
					}
					if len(res) != 1 || !spi.ValueEqual(res[0].Value, want) {
						select {
						case errCh <- fmt.Errorf("conn %d entry %d answered %v, want %d (spi:id cross-wired)", i, j, res, want):
						default:
						}
						continue
					}
					delivered.Add(1)
				}
			}(i)
			continue
		}
		for j := 0; j < callsPerConn; j++ {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				want := int64(i)*100 + int64(j)
				res, err := fleet[i].Call("Echo", "echo", soapenc.F("v", want))
				if err != nil {
					select {
					case errCh <- fmt.Errorf("conn %d call %d: %w", i, j, err):
					default:
					}
					return
				}
				if len(res) != 1 || !spi.ValueEqual(res[0].Value, want) {
					select {
					case errCh <- fmt.Errorf("conn %d call %d answered %v, want %d (response cross-wired)", i, j, res, want):
					default:
					}
					return
				}
				delivered.Add(1)
			}(i, j)
		}
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Minute):
		t.Fatal("C10k soak deadlocked")
	}
	close(errCh)
	n := 0
	for err := range errCh {
		if n < 10 {
			t.Error(err)
		}
		n++
	}
	if n > 0 {
		t.Fatalf("%d violations total", n)
	}
	batches := (conns + 9) / 10
	want := int64(batches*4 + (conns-batches)*callsPerConn)
	if got := delivered.Load(); got != want {
		t.Fatalf("delivered %d results, want %d: responses lost or duplicated", got, want)
	}
	if st := srv.Stats(); st.Faults != 0 {
		t.Errorf("server produced %d faults during clean soak", st.Faults)
	}
	t.Logf("C10k soak: %d connections, %d results delivered", conns, delivered.Load())
}
