// Package spi is SPI — the SOAP Passing Interface.
//
// SPI reproduces the system of "Application-aware Interface for SOAP
// Communication in Web Services" (Wang, Tong, Liu, Liu — IEEE CLUSTER
// 2006): an MPI-inspired, application-aware interface layered over SOAP
// whose pack interface reduces the number of SOAP messages a client must
// send. Several logically-concurrent service requests are packed into one
// SOAP message (a Parallel_Method body element), shipped over a single
// HTTP/TCP exchange, executed concurrently on the server's application
// thread pool, and answered in one packed response.
//
// The package is a facade: it re-exports the full public surface of the
// implementation packages so applications need a single import.
//
// # Quick start
//
// Server:
//
//	container := spi.NewContainer()
//	svc := container.MustAddService("Greeter", "urn:example:Greeter", "says hello")
//	svc.MustRegister("Hello", func(ctx *spi.HandlerContext, params []spi.Field) ([]spi.Field, error) {
//	    name := "world"
//	    for _, p := range params {
//	        if p.Name == "name" {
//	            name, _ = p.Value.(string)
//	        }
//	    }
//	    return []spi.Field{spi.F("greeting", "hello, "+name)}, nil
//	}, "greets the caller")
//
//	server, _ := spi.NewServer(spi.ServerConfig{Container: container})
//	listener, _ := net.Listen("tcp", ":8080")
//	go server.Serve(listener)
//
// Client — one call per message (the traditional interface):
//
//	client, _ := spi.NewClient(spi.ClientConfig{
//	    Dial: func() (net.Conn, error) { return net.Dial("tcp", "localhost:8080") },
//	})
//	results, err := client.Call("Greeter", "Hello", spi.F("name", "SPI"))
//
// Client — the pack interface (many calls, one message):
//
//	batch := client.NewBatch()
//	a := batch.Add("Greeter", "Hello", spi.F("name", "a"))
//	b := batch.Add("Greeter", "Hello", spi.F("name", "b"))
//	if err := batch.Send(); err != nil { ... }
//	resA, errA := a.Wait()
//	resB, errB := b.Wait()
//
// Client — transparent automatic packing (the paper's future work):
//
//	auto := spi.NewAutoBatcher(client, time.Millisecond, 128)
//	results, err := auto.Call("Greeter", "Hello")  // coalesces with concurrent calls
//
// # Architecture
//
// The stack is built bottom-up from first principles, stdlib-only:
//
//	internal/xmltext   streaming XML tokenizer and writer
//	internal/xmldom    DOM with namespace resolution
//	internal/soap      SOAP 1.1 envelope/fault codec
//	internal/soapenc   typed parameter encoding (xsi:type)
//	internal/httpx     HTTP/1.1 client and server over net.Conn
//	internal/netsim    simulated 100 Mbit testbed link
//	internal/stage     staged worker pools (SEDA)
//	internal/registry  service/operation container
//	internal/core      SPI: assembler, dispatcher, batch, auto-batch
//	internal/gateway   scatter–gather front tier with cross-client coalescing
//	internal/wsse      WS-Security-style signed headers
//	internal/wsdl      WSDL 1.1 descriptions
//	internal/bench     the paper's experiments (Figures 5-7, §4.3)
//
// See docs/ARCHITECTURE.md for the layer map and request lifecycles,
// DESIGN.md for the full system inventory, and EXPERIMENTS.md for the
// paper-versus-measured record.
package spi

import (
	"time"

	"repro/internal/bind"
	"repro/internal/core"
	"repro/internal/msgcache"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/soapenc"
	"repro/internal/trace"
	"repro/internal/wsdl"
	"repro/internal/wsse"
)

// Value model: the dynamic types a SOAP parameter can take. See
// internal/soapenc for the wire mapping.
type (
	// Value is one SOAP-encodable value: nil, string, bool, int64,
	// float64, []byte, time.Time, Array or *Struct.
	Value = soapenc.Value
	// Field is one named RPC parameter or struct member.
	Field = soapenc.Field
	// Struct is an ordered set of named fields.
	Struct = soapenc.Struct
	// Array is an ordered sequence of values.
	Array = soapenc.Array
)

// F constructs a Field.
func F(name string, v Value) Field { return soapenc.F(name, v) }

// NewStruct builds a Struct from fields.
func NewStruct(fields ...Field) *Struct { return soapenc.NewStruct(fields...) }

// ValueEqual reports deep semantic equality of two values.
func ValueEqual(a, b Value) bool { return soapenc.Equal(a, b) }

// Fault is a SOAP 1.1 fault; it implements error and is what failed calls
// return.
type Fault = soap.Fault

// Fault codes.
const (
	FaultVersionMismatch = soap.FaultVersionMismatch
	FaultMustUnderstand  = soap.FaultMustUnderstand
	FaultClient          = soap.FaultClient
	FaultServer          = soap.FaultServer
)

// Resilience fault codes (dotted refinements of Server, SOAP 1.1 §4.4.1).
const (
	// FaultTimeout marks work abandoned because a deadline expired —
	// delivered per item inside packed responses so finished companions
	// keep their real results.
	FaultTimeout = core.FaultCodeTimeout
	// FaultBusy marks a request shed at application-stage admission; the
	// operation never started, so retrying is always safe.
	FaultBusy = core.FaultCodeBusy
	// FaultCancelled marks work abandoned because the caller disconnected
	// or cancelled its context.
	FaultCancelled = core.FaultCodeCancelled
)

// IsTimeoutFault reports whether err is a per-item/per-operation deadline
// fault (FaultTimeout).
func IsTimeoutFault(err error) bool { return core.IsTimeoutFault(err) }

// IsBusyFault reports whether err is an admission-shed fault (FaultBusy),
// meaning the operation never started and the call may be retried freely.
func IsBusyFault(err error) bool { return core.IsBusyFault(err) }

// HeaderDeadline is the HTTP header carrying the client's remaining
// deadline budget in integer milliseconds; servers shorten it by
// ServerConfig.DeadlineGrace and degrade work still running when it
// expires.
const HeaderDeadline = core.HeaderDeadline

// Service registry.
type (
	// Container holds deployed services.
	Container = registry.Container
	// Service is a named collection of operations.
	Service = registry.Service
	// Operation is one registered operation.
	Operation = registry.Operation
	// Handler executes one service operation.
	Handler = registry.Handler
	// HandlerContext carries per-invocation information into handlers.
	HandlerContext = registry.Context
)

// NewContainer returns an empty service container.
func NewContainer() *Container { return registry.NewContainer() }

// TypedHandler adapts a typed function — func(ctx *HandlerContext, req
// ReqStruct) (RespStruct, error) — to the Handler signature by reflection,
// in the style of net/rpc. Struct fields map to named SOAP parameters
// (rename with a `soap:"name"` tag, skip with `soap:"-"`).
func TypedHandler(fn any) (Handler, error) { return bind.Handler(fn) }

// MustTypedHandler is TypedHandler that panics on a bad signature.
func MustTypedHandler(fn any) Handler { return bind.MustHandler(fn) }

// MarshalFields converts a struct into named SOAP parameters, for typed
// clients.
func MarshalFields(v any) ([]Field, error) { return bind.MarshalFields(v) }

// UnmarshalFields fills a struct from named SOAP results, for typed
// clients.
func UnmarshalFields(fields []Field, dst any) error { return bind.UnmarshalFields(fields, dst) }

// CallTyped invokes through any call surface with struct request/response
// marshalling:
//
//	var resp HelloResp
//	err := spi.CallTyped(func(p ...spi.Field) ([]spi.Field, error) {
//	    return client.Call("Greeter", "Hello", p...)
//	}, HelloReq{Name: "SPI"}, &resp)
func CallTyped(caller func(params ...Field) ([]Field, error), req, resp any) error {
	return bind.CallTyped(caller, req, resp)
}

// Client/server.
type (
	// Client issues SOAP calls, packed or not.
	Client = core.Client
	// ClientConfig configures a Client.
	ClientConfig = core.ClientConfig
	// ClientStats counts client traffic.
	ClientStats = core.ClientStats
	// Server hosts SPI services.
	Server = core.Server
	// ServerConfig configures a Server.
	ServerConfig = core.ServerConfig
	// ServerStats counts server work.
	ServerStats = core.ServerStats
	// Batch packs many calls into one SOAP message.
	Batch = core.Batch
	// Call is a pending invocation future.
	Call = core.Call
	// Plan is a multi-step remote execution: steps shipped in one SOAP
	// message whose later parameters may reference earlier results — the
	// "remote execution" interface of the SPI suite.
	Plan = core.Plan
	// StepHandle is one step of a Plan: a result future plus a reference
	// factory for dependent steps.
	StepHandle = core.StepHandle
	// AutoBatcher packs concurrent calls transparently.
	AutoBatcher = core.AutoBatcher
	// HeaderProvider contributes header blocks to outgoing envelopes.
	HeaderProvider = core.HeaderProvider
	// HeaderProcessor consumes header blocks on the server.
	HeaderProcessor = core.HeaderProcessor
	// TemplateCacheStats counts client template-cache behaviour (the
	// ClientConfig.TemplateCache optimization).
	TemplateCacheStats = msgcache.Stats
	// Interceptor wraps server envelope dispatch — the Axis handler-chain
	// extension point (ServerConfig.Interceptors).
	Interceptor = core.Interceptor
	// InterceptorDispatcher continues processing inside an Interceptor.
	InterceptorDispatcher = core.Dispatcher
	// RequestInfo describes the message an Interceptor is seeing.
	RequestInfo = core.RequestInfo
	// EntryInterceptor hooks each body entry on the streaming fast path
	// (ServerConfig.EntryInterceptors); unlike Interceptor it does not
	// force buffered dispatch.
	EntryInterceptor = core.EntryInterceptor
	// EntryInfo describes the entry an EntryInterceptor is seeing.
	EntryInfo = core.EntryInfo
	// RetryPolicy governs client-side retries: exponential backoff with
	// jitter, gated on idempotency for errors that may have executed
	// (ClientConfig.Retry, Client.MarkIdempotent).
	RetryPolicy = core.RetryPolicy
)

// DefaultRetryPolicy returns the recommended retry policy: 3 attempts,
// 20ms base delay doubling to a 2s cap, 20% jitter.
func DefaultRetryPolicy() *RetryPolicy { return core.DefaultRetryPolicy() }

// EntrySafe adapts an entry-safe whole-envelope Interceptor onto the
// entry-granular hook, keeping it on the streaming fast path.
func EntrySafe(ic Interceptor) EntryInterceptor { return core.EntrySafe(ic) }

// NewClient builds a client.
func NewClient(cfg ClientConfig) (*Client, error) { return core.NewClient(cfg) }

// NewServer builds a server.
func NewServer(cfg ServerConfig) (*Server, error) { return core.NewServer(cfg) }

// NewAutoBatcher wraps a client with windowed automatic packing.
func NewAutoBatcher(c *Client, window time.Duration, maxBatch int) *AutoBatcher {
	return core.NewAutoBatcher(c, window, maxBatch)
}

// Observability: per-stage tracing and latency histograms. A Tracer is
// shared between ClientConfig.Tracer and ServerConfig.Tracer (the SPI-Trace
// header correlates the two sides); a nil Tracer disables the whole layer
// for the cost of one branch per hop.
type (
	// Tracer records per-stage spans into a ring buffer and aggregates
	// per-stage latency histograms. All methods are nil-safe.
	Tracer = trace.Tracer
	// Span is one recorded hop: stage, trace id, packed-slot id, queue
	// wait versus service time.
	Span = trace.Span
	// StageSummary aggregates one stage's spans: counts plus queue/service
	// latency quantiles (p50/p95/p99, power-of-two buckets).
	StageSummary = trace.StageSummary
	// GaugeValue snapshots one named gauge (e.g. "app.queue") with its
	// last and peak values.
	GaugeValue = trace.GaugeValue
)

// NewTracer builds a Tracer whose ring buffer holds capacity spans
// (capacity <= 0 selects a default).
func NewTracer(capacity int) *Tracer { return trace.New(capacity) }

// Stage names recorded along the request path, in path order. The gateway
// stages appear only on deployments fronted by the scatter–gather tier
// (cmd/spigateway); the coalesce stages additionally require cross-client
// coalescing to be enabled there.
const (
	StageClientPack           = trace.StageClientPack
	StageClientSend           = trace.StageClientSend
	StageGatewayCoalesceWait  = trace.StageGatewayCoalesceWait
	StageGatewayCoalesceFlush = trace.StageGatewayCoalesceFlush
	StageGatewayScatter       = trace.StageGatewayScatter
	StageGatewayBackend       = trace.StageGatewayBackend
	StageGatewayGather        = trace.StageGatewayGather
	StageProtocol             = trace.StageProtocol
	StageDispatch             = trace.StageDispatch
	StageApp                  = trace.StageApp
	StageAssemble             = trace.StageAssemble
	StageClientUnpack         = trace.StageClientUnpack
)

// HeaderTrace is the HTTP header carrying the client's trace id so server
// spans join the client's trace.
const HeaderTrace = core.HeaderTrace

// Simulated network (the paper's testbed substitute).
type (
	// Link is an in-memory point-to-point network link.
	Link = netsim.Link
	// LinkConfig parameterizes a Link.
	LinkConfig = netsim.Config
	// LinkStats snapshots link counters.
	LinkStats = netsim.Stats
)

// NewLink creates a simulated link.
func NewLink(cfg LinkConfig) *Link { return netsim.NewLink(cfg) }

// LAN100 is the evaluation's 100 Mbit Ethernet configuration.
func LAN100() LinkConfig { return netsim.LAN100() }

// WS-Security.
type (
	// WSSecuritySigner signs outgoing envelopes (a HeaderProvider).
	WSSecuritySigner = wsse.Signer
	// WSSecurityVerifier verifies incoming envelopes (a HeaderProcessor).
	WSSecurityVerifier = wsse.Verifier
)

// WSDL descriptions.
type (
	// WSDLDescription is a parsed service description.
	WSDLDescription = wsdl.Description
)

// DescribeService renders the WSDL document for a deployed service as XML.
func DescribeService(svc *Service, address string) string {
	return wsdl.Describe(svc, address).String()
}

// ParseWSDL reads a WSDL document.
func ParseWSDL(doc string) (*WSDLDescription, error) { return wsdl.ParseString(doc) }
