package spi_test

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	spi "repro"
)

// startSystem deploys a Greeter service over a simulated link and returns
// a ready client, exercising the whole public facade the way a downstream
// user would.
func startSystem(t *testing.T, cfg spi.LinkConfig) (*spi.Client, *spi.Server, *spi.Link) {
	t.Helper()
	container := spi.NewContainer()
	svc := container.MustAddService("Greeter", "urn:example:Greeter", "says hello")
	svc.MustRegister("Hello", func(ctx *spi.HandlerContext, params []spi.Field) ([]spi.Field, error) {
		name := "world"
		for _, p := range params {
			if p.Name == "name" {
				name, _ = p.Value.(string)
			}
		}
		return []spi.Field{spi.F("greeting", "hello, "+name)}, nil
	}, "greets the caller")
	svc.MustRegister("Boom", func(ctx *spi.HandlerContext, params []spi.Field) ([]spi.Field, error) {
		return nil, errors.New("boom")
	}, "always fails")

	link := spi.NewLink(cfg)
	lis, err := link.Listen()
	if err != nil {
		t.Fatal(err)
	}
	server, err := spi.NewServer(spi.ServerConfig{Container: container})
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve(lis)
	client, err := spi.NewClient(spi.ClientConfig{Dial: link.Dial, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		server.Close()
		link.Close()
	})
	return client, server, link
}

func TestFacadeCall(t *testing.T) {
	client, _, _ := startSystem(t, spi.LinkConfig{})
	results, err := client.Call("Greeter", "Hello", spi.F("name", "SPI"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !spi.ValueEqual(results[0].Value, "hello, SPI") {
		t.Errorf("results = %v", results)
	}
}

func TestFacadeBatch(t *testing.T) {
	client, server, link := startSystem(t, spi.LinkConfig{})
	batch := client.NewBatch()
	a := batch.Add("Greeter", "Hello", spi.F("name", "a"))
	b := batch.Add("Greeter", "Hello", spi.F("name", "b"))
	bad := batch.Add("Greeter", "Boom")
	if err := batch.Send(); err != nil {
		t.Fatal(err)
	}
	ra, err := a.Wait()
	if err != nil || !spi.ValueEqual(ra[0].Value, "hello, a") {
		t.Errorf("a = %v, %v", ra, err)
	}
	rb, err := b.Wait()
	if err != nil || !spi.ValueEqual(rb[0].Value, "hello, b") {
		t.Errorf("b = %v, %v", rb, err)
	}
	if _, err := bad.Wait(); err == nil {
		t.Error("Boom succeeded")
	} else {
		var f *spi.Fault
		if !errors.As(err, &f) || f.Code != spi.FaultServer {
			t.Errorf("Boom err = %v", err)
		}
	}
	if link.Stats().Dials != 1 {
		t.Errorf("dials = %d, want 1 for a packed batch", link.Stats().Dials)
	}
	if server.Stats().PackedMessages != 1 {
		t.Errorf("packed messages = %d", server.Stats().PackedMessages)
	}
}

func TestFacadeAutoBatcher(t *testing.T) {
	client, _, _ := startSystem(t, spi.LinkConfig{})
	auto := spi.NewAutoBatcher(client, 10*time.Millisecond, 16)
	defer auto.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := auto.Call("Greeter", "Hello", spi.F("name", "x")); err != nil {
				t.Errorf("auto call: %v", err)
			}
		}()
	}
	wg.Wait()
	if st := client.Stats(); st.Envelopes >= 8 {
		t.Errorf("auto batcher used %d envelopes for 8 calls", st.Envelopes)
	}
}

func TestFacadePlan(t *testing.T) {
	client, _, link := startSystem(t, spi.LinkConfig{})
	plan := client.NewPlan()
	first := plan.Add("Greeter", "Hello", spi.F("name", "plan"))
	second := plan.Add("Greeter", "Hello", spi.F("name", first.Ref("greeting")))
	if err := plan.Send(); err != nil {
		t.Fatal(err)
	}
	res, err := second.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !spi.ValueEqual(res[0].Value, "hello, hello, plan") {
		t.Errorf("chained result = %v", res[0].Value)
	}
	if link.Stats().Dials != 1 {
		t.Errorf("dials = %d, want 1 for a two-step plan", link.Stats().Dials)
	}
}

func TestFacadeValues(t *testing.T) {
	s := spi.NewStruct(spi.F("k", "v"), spi.F("n", int64(2)))
	if s.GetString("k") != "v" || s.GetInt("n") != 2 {
		t.Errorf("struct accessors broken: %#v", s)
	}
	if !spi.ValueEqual(spi.Array{int64(1)}, spi.Array{int64(1)}) {
		t.Error("ValueEqual broken")
	}
}

func TestFacadeTypedBinding(t *testing.T) {
	type sumReq struct {
		A int64 `soap:"a"`
		B int64 `soap:"b"`
	}
	type sumResp struct {
		Sum int64 `soap:"sum"`
	}
	container := spi.NewContainer()
	svc := container.MustAddService("Calc", "urn:x:Calc", "typed arithmetic")
	svc.MustRegister("Sum", spi.MustTypedHandler(func(ctx *spi.HandlerContext, req sumReq) (sumResp, error) {
		return sumResp{Sum: req.A + req.B}, nil
	}), "adds two numbers")

	link := spi.NewLink(spi.LinkConfig{})
	lis, err := link.Listen()
	if err != nil {
		t.Fatal(err)
	}
	server, err := spi.NewServer(spi.ServerConfig{Container: container})
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve(lis)
	client, err := spi.NewClient(spi.ClientConfig{Dial: link.Dial, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close(); server.Close(); link.Close() })

	var resp sumResp
	err = spi.CallTyped(func(p ...spi.Field) ([]spi.Field, error) {
		return client.Call("Calc", "Sum", p...)
	}, sumReq{A: 19, B: 23}, &resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Sum != 42 {
		t.Errorf("sum = %d", resp.Sum)
	}
}

func TestFacadeWSSecurity(t *testing.T) {
	secret := []byte("s3cret")
	container := spi.NewContainer()
	svc := container.MustAddService("Echo", "urn:x:Echo", "")
	svc.MustRegister("echo", func(ctx *spi.HandlerContext, params []spi.Field) ([]spi.Field, error) {
		return params, nil
	}, "")

	link := spi.NewLink(spi.LinkConfig{})
	lis, _ := link.Listen()
	server, err := spi.NewServer(spi.ServerConfig{
		Container: container,
		HeaderProcessors: []spi.HeaderProcessor{
			&spi.WSSecurityVerifier{Secrets: map[string][]byte{"alice": secret}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve(lis)
	defer server.Close()
	defer link.Close()

	client, err := spi.NewClient(spi.ClientConfig{
		Dial:            link.Dial,
		Timeout:         10 * time.Second,
		HeaderProviders: []spi.HeaderProvider{&spi.WSSecuritySigner{Username: "alice", Secret: secret}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Call("Echo", "echo", spi.F("m", "signed")); err != nil {
		t.Fatalf("signed call: %v", err)
	}

	// A client without credentials still passes (header is optional unless
	// mustUnderstand), but a client with bad credentials is rejected.
	evil, err := spi.NewClient(spi.ClientConfig{
		Dial:            link.Dial,
		Timeout:         10 * time.Second,
		HeaderProviders: []spi.HeaderProvider{&spi.WSSecuritySigner{Username: "alice", Secret: []byte("wrong")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer evil.Close()
	if _, err := evil.Call("Echo", "echo", spi.F("m", "forged")); err == nil {
		t.Error("forged call accepted")
	}
}

func TestFacadeWSDL(t *testing.T) {
	container := spi.NewContainer()
	svc := container.MustAddService("Greeter", "urn:example:Greeter", "docs")
	svc.MustRegister("Hello", func(ctx *spi.HandlerContext, p []spi.Field) ([]spi.Field, error) {
		return p, nil
	}, "")
	doc := spi.DescribeService(svc, "http://h/services/Greeter")
	if !strings.Contains(doc, "wsdl:definitions") {
		t.Fatalf("WSDL = %s", doc)
	}
	d, err := spi.ParseWSDL(doc)
	if err != nil {
		t.Fatal(err)
	}
	if d.Service != "Greeter" || d.Namespace != "urn:example:Greeter" {
		t.Errorf("description = %+v", d)
	}
}

func TestFacadeLAN100(t *testing.T) {
	cfg := spi.LAN100()
	if cfg.Bandwidth != 12_500_000 {
		t.Errorf("LAN100 bandwidth = %d", cfg.Bandwidth)
	}
	client, _, _ := startSystem(t, cfg)
	start := time.Now()
	if _, err := client.Call("Greeter", "Hello"); err != nil {
		t.Fatal(err)
	}
	// A call over the simulated LAN must cost at least the handshake +
	// request/response propagation (~0.75ms).
	if elapsed := time.Since(start); elapsed < 500*time.Microsecond {
		t.Errorf("LAN call took only %v", elapsed)
	}
}
